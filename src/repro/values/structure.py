"""Structural predicates and helpers over the value universe.

The value kinds and their Python carriers:

==================  =============================================
value kind          Python carrier
==================  =============================================
null                :data:`~repro.values.null.NULL`
integer             ``int`` (excluding ``bool``)
real                ``float``
bool                ``bool``
character           ``str`` of length 1 (by type, not by carrier)
string              ``str``
time                ``int`` (a natural number)
oid (object types)  :class:`~repro.values.oid.OID`
set-of(T)           ``set`` / ``frozenset``
list-of(T)          ``list`` / ``tuple``
record-of(...)      :class:`~repro.values.records.RecordValue`
temporal(T)         :class:`~repro.temporal.temporalvalue.TemporalValue`
==================  =============================================

``set`` vs ``frozenset`` and ``list`` vs ``tuple`` are interchangeable on
input; :func:`normalize_value` canonicalizes to the immutable carriers so
complex values behave as values (identified by their components).
"""

from __future__ import annotations

from typing import Any

from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import Null
from repro.values.oid import OID
from repro.values.records import RecordValue

_PRIMITIVE_CARRIERS = (int, float, bool, str)


def is_primitive_value(value: Any) -> bool:
    """True for carriers of the basic predefined value types."""
    return isinstance(value, _PRIMITIVE_CARRIERS)


def is_set_value(value: Any) -> bool:
    """True for carriers of ``set-of(T)`` values."""
    return isinstance(value, (set, frozenset))


def is_list_value(value: Any) -> bool:
    """True for carriers of ``list-of(T)`` values."""
    return isinstance(value, (list, tuple))


def is_record_value(value: Any) -> bool:
    """True for carriers of ``record-of(...)`` values."""
    return isinstance(value, RecordValue)


def normalize_value(value: Any) -> Any:
    """Canonicalize a value to immutable carriers, recursively.

    Sets become ``frozenset``, lists become ``tuple``; records and
    temporal values are rebuilt over normalized components.  Primitive
    values, oids and null are returned unchanged.
    """
    if isinstance(value, (set, frozenset)):
        return frozenset(normalize_value(v) for v in value)
    if isinstance(value, (list, tuple)):
        return tuple(normalize_value(v) for v in value)
    if isinstance(value, RecordValue):
        return RecordValue({k: normalize_value(v) for k, v in value.items()})
    if isinstance(value, TemporalValue):
        return value.map(normalize_value)
    return value


def values_equal(a: Any, b: Any) -> bool:
    """Deep structural equality over the value universe.

    This is the equality used for (shallow) value equality of objects
    (Definition 5.8): component-wise over records, element-wise over
    collections, extensional over temporal values, and identity of oids
    (an oid is a value; dereferencing it is *deep* equality, which is
    out of scope here -- see :mod:`repro.objects.equality`).
    """
    if isinstance(a, Null) or isinstance(b, Null):
        return isinstance(a, Null) and isinstance(b, Null)
    if isinstance(a, OID) or isinstance(b, OID):
        return isinstance(a, OID) and isinstance(b, OID) and a == b
    if isinstance(a, TemporalValue) or isinstance(b, TemporalValue):
        return (
            isinstance(a, TemporalValue)
            and isinstance(b, TemporalValue)
            and a == b
        )
    if is_set_value(a) or is_set_value(b):
        if not (is_set_value(a) and is_set_value(b)):
            return False
        return frozenset(normalize_value(v) for v in a) == frozenset(
            normalize_value(v) for v in b
        )
    if is_list_value(a) or is_list_value(b):
        if not (is_list_value(a) and is_list_value(b)):
            return False
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, RecordValue) or isinstance(b, RecordValue):
        if not (isinstance(a, RecordValue) and isinstance(b, RecordValue)):
            return False
        if set(a.names) != set(b.names):
            return False
        return all(values_equal(a[name], b[name]) for name in a.names)
    if isinstance(a, bool) != isinstance(b, bool):
        # bool is not comparable with the numeric types at the model level
        return False
    return a == b


def format_value(value: Any) -> str:
    """A printable form of any value (values are printable; Section 2)."""
    if isinstance(value, Null):
        return "null"
    if isinstance(value, (set, frozenset)):
        if not value:
            return "{}"
        parts = sorted(format_value(v) for v in value)
        return "{" + ", ".join(parts) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    if isinstance(value, RecordValue):
        body = ", ".join(
            f"{name}: {format_value(v)}" for name, v in value.items()
        )
        return f"({body})"
    if isinstance(value, TemporalValue):
        body = ", ".join(
            f"<{interval}, {format_value(v)}>" for interval, v in value.pairs()
        )
        return "{" + body + "}"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)
