"""Object identifiers.

Each object has a unique, system-defined oid, assigned at creation and
immutable for the object's lifetime (paper, Section 2).  The oid is the
*time-invariant* identity of the object -- the analogue of the "essence"
of Clifford and Croker (Section 5.2) -- and in T_Chimera oids are
themselves values, typed by the classes whose extent contains them.

Hierarchy branding
------------------
Invariant 6.2 requires that the sets of oids of objects that have *ever*
belonged to different ISA hierarchies are disjoint: an object cannot
migrate across hierarchies even at different times.  To make this
invariant checkable locally, the oid allocator brands each oid with the
name of the root class of the hierarchy it was created in; the engine
refuses migrations that would change the brand, and the global invariant
check reduces to a per-oid comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class OID:
    """An object identifier ``i_k``, branded with its hierarchy root.

    ``serial`` is the system-assigned number; ``hierarchy`` is the name
    of the hierarchy's root class (or ``""`` for oids minted outside a
    database, e.g. in unit tests of the value layer).
    """

    serial: int
    hierarchy: str = ""

    def __repr__(self) -> str:
        if self.hierarchy:
            return f"i{self.serial}@{self.hierarchy}"
        return f"i{self.serial}"

    def __str__(self) -> str:
        return repr(self)


class OidGenerator:
    """Mints fresh oids with strictly increasing serials.

    The counter is plain state (not an opaque iterator) so that
    persistence and the write-ahead journal can checkpoint and restore
    it exactly: Definition 5.6 (OID-UNIQUENESS) spans the whole life of
    the database, including its life across restarts, so the next
    serial must survive a round trip even when the highest-serial
    object has been deleted.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = int(start)

    @property
    def next_serial(self) -> int:
        """The serial the next :meth:`fresh` call will issue."""
        return self._next

    def fresh(self, hierarchy: str = "") -> OID:
        """Return a never-before-issued oid branded with *hierarchy*."""
        serial = self._next
        self._next += 1
        return OID(serial, hierarchy)

    def fresh_many(self, n: int, hierarchy: str = "") -> list[OID]:
        """Return *n* fresh oids."""
        return [self.fresh(hierarchy) for _ in range(n)]
