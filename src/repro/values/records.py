"""Record values.

Instances of ``record-of(a_1: T_1, ..., a_n: T_n)`` are records
``(a_1: v_1, ..., a_n: v_n)`` whose i-th component is an instance of
``T_i`` (Definition 3.2 / 3.5).  A complex value is identified by the
values of all its components (paper, Section 2): changing a component
changes the identity of the value.  :class:`RecordValue` is therefore
immutable, with structural equality and hashing over its fields.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import DuplicateAttributeError, UnknownAttributeError


class RecordValue:
    """An immutable record ``(a_1: v_1, ..., a_n: v_n)``.

    Field order is preserved (it is part of the printed form) but does
    not affect equality: two records are equal iff they bind the same
    names to equal values, matching the set-of-attributes reading of
    Definition 3.5.
    """

    __slots__ = ("_fields",)

    def __init__(
        self,
        fields: Mapping[str, Any] | None = None,
        /,
        **kwargs: Any,
    ) -> None:
        items: list[tuple[str, Any]] = []
        seen: set[str] = set()
        sources: list[Mapping[str, Any]] = []
        if fields is not None:
            sources.append(fields)
        if kwargs:
            sources.append(kwargs)
        for source in sources:
            for name, value in source.items():
                if name in seen:
                    raise DuplicateAttributeError(
                        f"record declares attribute {name!r} twice"
                    )
                seen.add(name)
                items.append((name, value))
        object.__setattr__(self, "_fields", dict(items))

    # -- access ---------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(self._fields)

    def get(self, name: str, default: Any = None) -> Any:
        return self._fields.get(name, default)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._fields[name]
        except KeyError:
            raise UnknownAttributeError(
                f"record has no attribute {name!r} "
                f"(has {sorted(self._fields)})"
            ) from None

    def __getattr__(self, name: str) -> Any:
        # Called only when normal lookup fails; gives `record.name` sugar.
        fields = object.__getattribute__(self, "_fields")
        if name in fields:
            return fields[name]
        raise AttributeError(name)

    def __contains__(self, name: object) -> bool:
        return name in self._fields

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(self._fields.items())

    def values(self) -> Iterator[Any]:
        return iter(self._fields.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- derivation --------------------------------------------------------------

    def with_field(self, name: str, value: Any) -> "RecordValue":
        """A copy with *name* bound to *value* (added or replaced)."""
        fields = dict(self._fields)
        fields[name] = value
        return RecordValue(fields)

    def without_field(self, name: str) -> "RecordValue":
        """A copy with *name* removed (error if absent)."""
        if name not in self._fields:
            raise UnknownAttributeError(f"record has no attribute {name!r}")
        fields = {k: v for k, v in self._fields.items() if k != name}
        return RecordValue(fields)

    def project(self, names: tuple[str, ...] | list[str]) -> "RecordValue":
        """The sub-record on *names*, preserving this record's order."""
        wanted = set(names)
        missing = wanted - set(self._fields)
        if missing:
            raise UnknownAttributeError(
                f"record has no attribute(s) {sorted(missing)}"
            )
        return RecordValue(
            {k: v for k, v in self._fields.items() if k in wanted}
        )

    def to_dict(self) -> dict[str, Any]:
        """A plain (mutable) dict copy of the fields."""
        return dict(self._fields)

    # -- comparison -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordValue):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        from repro.temporal.temporalvalue import _hashable

        return hash(
            frozenset((k, _hashable(v)) for k, v in self._fields.items())
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{k}: {v!r}" for k, v in self._fields.items())
        return f"({body})"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("RecordValue is immutable")

    def __reduce__(self):
        # Slots + frozen __setattr__ defeat the default copy/pickle
        # protocol; rebuild from the field dict instead.
        return (RecordValue, (dict(self._fields),))
