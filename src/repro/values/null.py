"""The null value.

Definition 3.5 opens with ``null in [[T]]_t`` for every type T and every
instant t: the null value is a legal value of *every* T_Chimera type,
and the first typing rule of Definition 3.6 types it accordingly.

We use a dedicated singleton rather than Python's ``None`` so that
``None`` can keep its ordinary host-language meaning ("no argument",
"not found") without being confused with the model-level null.
"""

from __future__ import annotations


class Null:
    """The distinguished null value (singleton :data:`NULL`)."""

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("T_Chimera.null")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __reduce__(self):
        return (Null, ())


NULL = Null()


def is_null(value: object) -> bool:
    """True iff *value* is the model-level null value."""
    return isinstance(value, Null)
