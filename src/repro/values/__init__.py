"""The T_Chimera value universe.

Chimera distinguishes *values* from *objects* (paper, Section 2): values
are symbolic, printable elements identified by themselves (primitive
values) or by their components (complex values); objects are abstract
elements identified by an oid regardless of their state.  In T_Chimera
oids are themselves handled as values (Section 3.2): an oid is a value
of the object type named by a class.

This package provides the carriers of those values:

* :data:`NULL` -- the null value, a legal value of every type;
* :class:`OID` -- object identifiers, branded with their hierarchy;
* :class:`RecordValue` -- immutable record values;
* set values (``set``/``frozenset``), list values (``list``/``tuple``),
  and primitive values (``int``, ``float``, ``bool``, ``str``);
* temporal values (:class:`~repro.temporal.temporalvalue.TemporalValue`).

plus structural helpers: :func:`values_equal`, :func:`normalize_value`,
:func:`format_value`, and the value-kind predicates.
"""

from repro.values.null import NULL, Null, is_null
from repro.values.oid import OID, OidGenerator
from repro.values.records import RecordValue
from repro.values.structure import (
    format_value,
    is_list_value,
    is_primitive_value,
    is_record_value,
    is_set_value,
    normalize_value,
    values_equal,
)

__all__ = [
    "NULL",
    "Null",
    "is_null",
    "OID",
    "OidGenerator",
    "RecordValue",
    "values_equal",
    "normalize_value",
    "format_value",
    "is_set_value",
    "is_list_value",
    "is_record_value",
    "is_primitive_value",
]
