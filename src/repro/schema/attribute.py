"""Attribute declarations.

Each attribute is characterized by its name and the type of its values
(Definition 4.1).  The paper distinguishes three *kinds* of attributes
(Section 1.1):

* **temporal** (historical) -- the domain is a temporal type; the value
  may change over time and all its values are recorded;
* **immutable** -- a special case of temporal: the value is a constant
  function from the temporal domain (e.g. ``name`` in Example 4.1,
  "immutable during the project lifetime");
* **static** (non-temporal) -- the value may change but past values are
  not recorded.

The kind is determined by the declared type (temporal vs. not); the
``immutable`` flag marks a temporal attribute as constant, which the
engine enforces on update.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError, TypeSyntaxError
from repro.types.grammar import TemporalType, Type
from repro.types.parser import parse_type


@dataclass(frozen=True)
class Attribute:
    """An attribute declaration ``(a_name, a_type)`` with a kind flag.

    ``declared_at`` supports the schema-evolution extension: an
    attribute added to a class after its creation characterizes
    instances only from that instant on, and the consistency notions
    (Defs. 5.3-5.5) quantify over the attribute's declaration span.
    Attributes declared with the class carry the class's creation
    instant (the default 0 is "since the beginning of time", which is
    always sound).
    """

    name: str
    type: Type
    immutable: bool = False
    declared_at: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")
        if isinstance(self.type, str):
            # Convenience: accept concrete syntax.
            object.__setattr__(self, "type", parse_type(self.type))
        if not isinstance(self.type, Type):
            raise TypeSyntaxError(
                f"attribute {self.name!r} needs a Type, got {self.type!r}"
            )
        if self.immutable and not self.is_temporal:
            raise SchemaError(
                f"attribute {self.name!r}: immutable attributes are a "
                "special case of temporal ones (a constant function from "
                "a temporal domain); declare a temporal type"
            )

    @property
    def is_temporal(self) -> bool:
        """True iff the attribute's domain is a temporal type."""
        return isinstance(self.type, TemporalType)

    @property
    def is_static(self) -> bool:
        """True iff the attribute is non-temporal."""
        return not self.is_temporal

    @property
    def kind(self) -> str:
        """``"immutable"``, ``"temporal"`` or ``"static"``."""
        if self.immutable:
            return "immutable"
        return "temporal" if self.is_temporal else "static"

    def __repr__(self) -> str:
        flag = ", immutable" if self.immutable else ""
        return f"({self.name}, {self.type!r}{flag})"
