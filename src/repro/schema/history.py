"""Class histories: c-attribute values, ``ext`` and ``proper-ext``.

The ``history`` component of a class (Definition 4.1) is a record
value::

    (a_1: v_1, ..., a_n: v_n, ext: E, proper-ext: PE)

where the ``a_i`` are the c-attributes and ``E`` / ``PE`` are temporal
values recording, for each instant of the class lifespan, the oids of
the objects that are *members* (instances of the class or of one of its
subclasses) and *instances* (the class is their most specific class).
``PE(t) ⊆ E(t)`` for every t in the lifespan.

Representation.  ``E`` and ``PE`` are temporal values carrying
``frozenset[OID]``; in addition the history maintains a per-oid index
(oid -> intervals of membership) so that ``pi``-style membership
queries (function ``pi`` of Table 3, Invariants 5.1/5.2/6.1) do not
scan the set-valued history.  The two representations are redundant by
construction; :mod:`repro.database.integrity` cross-checks them, and
the ablation bench E6/E8 measures what the index buys.

Clock discipline: all mutations happen at the caller-supplied current
time, which must not precede earlier mutations.
"""

from __future__ import annotations

from typing import Any

from repro.errors import LifespanError, SchemaError
from repro.temporal.instants import Now
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue


class _MembershipTrack:
    """One of ``ext`` / ``proper-ext``: a set-valued temporal value plus
    a per-oid interval index."""

    __slots__ = ("sets", "_spans")

    def __init__(self) -> None:
        self.sets = TemporalValue()  # carries frozenset[OID]
        self._spans: dict[OID, list[Interval]] = {}

    def current(self, t: int) -> frozenset[OID]:
        return self.sets.get(t, frozenset())

    def add(self, oid: OID, t: int) -> None:
        spans = self._spans.setdefault(oid, [])
        if spans and spans[-1].is_moving:
            return  # already a member
        spans.append(Interval.from_now(t))
        self.sets.assign(t, self.current(t) | {oid})

    def remove(self, oid: OID, t: int) -> None:
        """End membership: *oid* is a member through ``t - 1``."""
        spans = self._spans.get(oid)
        if not spans or not spans[-1].is_moving:
            return  # not currently a member
        start = spans[-1].start
        if t <= start:
            # Joined and left within the same tick: never a member.
            spans.pop()
            if not spans:
                del self._spans[oid]
        else:
            spans[-1] = Interval(start, t - 1)
        current = self.current(t)
        if oid in current:
            self.sets.assign(t, current - {oid})

    def contains(self, oid: OID, t: int) -> bool:
        spans = self._spans.get(oid)
        if not spans:
            return False
        for interval in reversed(spans):
            if interval.is_moving:
                if t >= interval.start:
                    return True
            elif interval.start <= t <= interval.end:  # type: ignore[operator]
                return True
            elif t > interval.end:  # type: ignore[operator]
                return False
        return False

    def times(self, oid: OID, now: int | None) -> IntervalSet:
        return IntervalSet(self._spans.get(oid, ()), now=now)

    def members_at(self, t: int) -> frozenset[OID]:
        return self.current(t)

    def all_ever(self) -> frozenset[OID]:
        return frozenset(self._spans)

    def at_via_scan(self, t: int) -> frozenset[OID]:
        """Membership at *t* recomputed from the per-oid index (used by
        the integrity cross-check and the ablation bench)."""
        return frozenset(
            oid for oid in self._spans if self.contains(oid, t)
        )


class ClassHistory:
    """The ``history`` component of one class."""

    def __init__(self, c_attr_values: dict[str, Any] | None = None) -> None:
        self.c_attr_values: dict[str, Any] = dict(c_attr_values or {})
        self._ext = _MembershipTrack()
        self._proper_ext = _MembershipTrack()

    # -- c-attributes ------------------------------------------------------------

    def get_c_attr(self, name: str) -> Any:
        if name not in self.c_attr_values:
            raise SchemaError(f"no c-attribute {name!r}")
        return self.c_attr_values[name]

    def set_c_attr(self, name: str, value: Any, t: int) -> None:
        """Update a c-attribute; temporal c-attribute values are
        extended at instant *t*, static ones replaced."""
        current = self.c_attr_values.get(name)
        if isinstance(current, TemporalValue):
            current.assign(t, value)
        else:
            self.c_attr_values[name] = value

    # -- extents -------------------------------------------------------------------

    @property
    def ext(self) -> TemporalValue:
        """The temporal value of member sets (``ext`` of Def. 4.1)."""
        return self._ext.sets

    @property
    def proper_ext(self) -> TemporalValue:
        """The temporal value of instance sets (``proper-ext``)."""
        return self._proper_ext.sets

    def members_at(self, t: int) -> frozenset[OID]:
        """``pi(c, t)`` restricted to this class: members at instant t."""
        return self._ext.members_at(t)

    def instances_at(self, t: int) -> frozenset[OID]:
        return self._proper_ext.members_at(t)

    def member_times(self, oid: OID, now: int | None = None) -> IntervalSet:
        """The instants at which *oid* is a member (via the index)."""
        return self._ext.times(oid, now)

    def instance_times(self, oid: OID, now: int | None = None) -> IntervalSet:
        return self._proper_ext.times(oid, now)

    def is_member(self, oid: OID, t: int) -> bool:
        return self._ext.contains(oid, t)

    def is_instance(self, oid: OID, t: int) -> bool:
        return self._proper_ext.contains(oid, t)

    def ever_members(self) -> frozenset[OID]:
        """Every oid that has ever been a member of the class."""
        return self._ext.all_ever()

    def members_at_via_scan(self, t: int) -> frozenset[OID]:
        """Members at *t* recomputed without the set-valued history."""
        return self._ext.at_via_scan(t)

    def add_member(self, oid: OID, t: int) -> None:
        self._ext.add(oid, t)

    def remove_member(self, oid: OID, t: int) -> None:
        self._ext.remove(oid, t)

    def add_instance(self, oid: OID, t: int) -> None:
        if not self._ext.contains(oid, t):
            raise LifespanError(
                f"{oid!r} must be a member before becoming an instance"
            )
        self._proper_ext.add(oid, t)

    def remove_instance(self, oid: OID, t: int) -> None:
        self._proper_ext.remove(oid, t)

    # -- the record view of Definition 4.1 -------------------------------------------

    def as_record(self) -> RecordValue:
        """The history as the paper's record value
        ``(a_1: v_1, ..., ext: E, proper-ext: PE)``."""
        fields: dict[str, Any] = dict(self.c_attr_values)
        fields["ext"] = self._ext.sets
        fields["proper-ext"] = self._proper_ext.sets
        return RecordValue(fields)
