"""Method signatures.

Each method is characterized by its name and the types of its input and
output parameters (Definition 4.1)::

    m_sign :  T_1 x ... x T_n -> T

Redefinition in a subclass must verify the *covariance* rule for the
result parameter and the *contravariance* rule for the input parameters
(Section 6.1); :meth:`MethodSignature.is_valid_override` implements the
check.  An optional *body* (a plain Python callable) makes signatures
executable for the examples and the time-dependent-behaviour extension;
the body receives the receiver's snapshot and the arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SchemaError, TypeSyntaxError
from repro.types.grammar import Type
from repro.types.parser import parse_type
from repro.types.subtyping import IsaOrder, is_subtype


@dataclass(frozen=True)
class MethodSignature:
    """A method signature ``(m_name, T_1 x ... x T_n -> T)``."""

    name: str
    inputs: tuple[Type, ...]
    output: Type
    body: Callable[..., Any] | None = field(
        default=None, compare=False, hash=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("method name must be a non-empty string")
        inputs = tuple(
            parse_type(t) if isinstance(t, str) else t for t in self.inputs
        )
        object.__setattr__(self, "inputs", inputs)
        if isinstance(self.output, str):
            object.__setattr__(self, "output", parse_type(self.output))
        for t in (*self.inputs, self.output):
            if not isinstance(t, Type):
                raise TypeSyntaxError(
                    f"method {self.name!r}: parameter types must be "
                    f"Types, got {t!r}"
                )

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def is_valid_override(
        self, inherited: "MethodSignature", isa: IsaOrder
    ) -> bool:
        """Check the redefinition rules against an inherited signature.

        * same arity;
        * **contravariance** of the inputs: each input domain may be
          *generalized*, i.e. ``inherited_input <=_T own_input``;
        * **covariance** of the output: the result domain may be
          *specialized*, i.e. ``own_output <=_T inherited_output``.
        """
        if self.name != inherited.name or self.arity != inherited.arity:
            return False
        inputs_ok = all(
            is_subtype(sup_t, own_t, isa)
            for own_t, sup_t in zip(self.inputs, inherited.inputs)
        )
        output_ok = is_subtype(self.output, inherited.output, isa)
        return inputs_ok and output_ok

    def __repr__(self) -> str:
        ins = " x ".join(repr(t) for t in self.inputs) if self.inputs else "()"
        return f"({self.name}, {ins} -> {self.output!r})"
