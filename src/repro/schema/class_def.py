"""Class signatures (Definition 4.1).

A :class:`ClassSignature` packages the 7-tuple
``(c, type, lifespan, attr, meth, history, mc)``.  The ``type``
component -- whether the class is *static* or *historical* -- is not
stored but derived: a class is historical iff at least one of its
c-attributes has a temporal domain.  (Instances of a static class can
still be historical objects: Example 4.1's ``project`` is a static
class with temporal instance attributes.)

Lifespans are contiguous (a class is never recreated after deletion):
the live lifespan is the moving interval ``[created_at, now]``, closed
when the class is dropped.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterable, Mapping

from repro.errors import (
    DuplicateAttributeError,
    LifespanError,
    SchemaError,
)
from repro.schema.attribute import Attribute
from repro.schema.history import ClassHistory
from repro.schema.method import MethodSignature
from repro.temporal.intervals import Interval
from repro.types.grammar import Type


class ClassKind(str, Enum):
    """The ``type`` component of Definition 4.1."""

    STATIC = "static"
    HISTORICAL = "historical"


class ClassSignature:
    """One T_Chimera class: signature plus runtime history."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute] = (),
        methods: Iterable[MethodSignature] = (),
        c_attributes: Iterable[Attribute] = (),
        created_at: int = 0,
        metaclass_name: str | None = None,
        c_attr_values: Mapping[str, Any] | None = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError("class name must be a non-empty string")
        self.name = name
        self.attributes: dict[str, Attribute] = {}
        for attribute in attributes:
            if attribute.name in self.attributes:
                raise DuplicateAttributeError(
                    f"class {name!r} declares attribute "
                    f"{attribute.name!r} twice"
                )
            self.attributes[attribute.name] = attribute
        self.methods: dict[str, MethodSignature] = {}
        for method in methods:
            if method.name in self.methods:
                raise SchemaError(
                    f"class {name!r} declares method {method.name!r} twice"
                )
            self.methods[method.name] = method
        self.c_attributes: dict[str, Attribute] = {}
        for c_attribute in c_attributes:
            if c_attribute.name in self.c_attributes:
                raise DuplicateAttributeError(
                    f"class {name!r} declares c-attribute "
                    f"{c_attribute.name!r} twice"
                )
            if c_attribute.name in ("ext", "proper-ext"):
                raise SchemaError(
                    f"c-attribute name {c_attribute.name!r} is reserved "
                    "for the class history"
                )
            self.c_attributes[c_attribute.name] = c_attribute
        self.lifespan: Interval = Interval.from_now(created_at)
        self.metaclass_name = metaclass_name or f"m-{name}"
        self.history = ClassHistory(dict(c_attr_values or {}))
        #: Schema evolution: attributes removed from the class, with
        #: the instant of removal (their histories on objects are
        #: retained, and consistency honours every declaration span --
        #: a name may be declared and retired several times).
        self.retired_attributes: dict[str, list[tuple[Attribute, int]]] = {}

    # -- the `type` component ------------------------------------------------------

    @property
    def kind(self) -> ClassKind:
        """``historical`` iff some c-attribute has a temporal domain."""
        if any(a.is_temporal for a in self.c_attributes.values()):
            return ClassKind.HISTORICAL
        return ClassKind.STATIC

    @property
    def is_historical(self) -> bool:
        return self.kind is ClassKind.HISTORICAL

    # -- instance-attribute views ----------------------------------------------------

    def attribute(self, name: str) -> Attribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def temporal_attributes(self) -> dict[str, Attribute]:
        """The attributes with a temporal domain."""
        return {
            name: a for name, a in self.attributes.items() if a.is_temporal
        }

    def static_attributes(self) -> dict[str, Attribute]:
        """The attributes with a non-temporal domain."""
        return {
            name: a for name, a in self.attributes.items() if a.is_static
        }

    def instances_are_historical(self) -> bool:
        """True iff instances of the class are historical objects
        (at least one instance attribute is temporal)."""
        return any(a.is_temporal for a in self.attributes.values())

    # -- schema evolution -----------------------------------------------------------

    def declare_attribute(self, attribute: Attribute) -> None:
        """Add *attribute* to the signature (schema evolution).

        If the same name was retired earlier, the new declaration
        supersedes it going forward; the retirement record is kept so
        past consistency still honours the old span.
        """
        if attribute.name in self.attributes:
            raise DuplicateAttributeError(
                f"class {self.name!r} already has attribute "
                f"{attribute.name!r}"
            )
        self.attributes[attribute.name] = attribute

    def retire_attribute(self, name: str, at: int) -> Attribute:
        """Remove attribute *name* from the signature at instant *at*."""
        attribute = self.attribute(name)
        del self.attributes[name]
        self.retired_attributes.setdefault(name, []).append(
            (attribute, at)
        )
        return attribute

    def attribute_span(self, name: str, now_hint: int | None = None):
        """The instants during which *name* is (was) declared:
        ``(declared_at, retired_at_or_None)``; None when never
        declared."""
        if name in self.attributes:
            return (self.attributes[name].declared_at, None)
        if name in self.retired_attributes:
            attribute, retired_at = self.retired_attributes[name][-1]
            return (attribute.declared_at, retired_at)
        return None

    # -- lifespan -----------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return self.lifespan.is_moving

    def close_lifespan(self, t: int) -> None:
        """Drop the class: its lifespan ends at ``t - 1``."""
        if not self.lifespan.is_moving:
            raise LifespanError(f"class {self.name!r} was already dropped")
        if t <= self.lifespan.start:
            raise LifespanError(
                f"class {self.name!r} cannot be dropped in its creation "
                "tick"
            )
        self.lifespan = Interval(self.lifespan.start, t - 1)

    def alive_at(self, t: int, now: int | None = None) -> bool:
        return self.lifespan.contains(t, now)

    def __repr__(self) -> str:
        return (
            f"ClassSignature({self.name!r}, kind={self.kind.value}, "
            f"lifespan={self.lifespan}, "
            f"attributes={list(self.attributes)}, "
            f"methods={list(self.methods)})"
        )
