"""Metaclasses.

To model class features uniformly with object features, each class is
the unique instance of a *metaclass* (Definition 4.1's ``mc``
component; the Smalltalk-80 view of [10]).  The metaclass's attribute
signature describes the class-level state: the declared c-attributes
plus the two membership-history attributes that every class carries::

    ext:        temporal(set-of(c))
    proper-ext: temporal(set-of(c))

so the class's ``history`` record (Definition 4.1) is exactly an
instance of the metaclass's structural type -- the test suite checks
that ``history.as_record()`` is a legal value of
``Metaclass.structural_type()``.
"""

from __future__ import annotations

from repro.schema.attribute import Attribute
from repro.schema.class_def import ClassSignature
from repro.schema.method import MethodSignature
from repro.types.grammar import ObjectType, RecordOf, SetOf, TemporalType


class Metaclass:
    """The metaclass of one class: a special class with one instance."""

    def __init__(
        self,
        class_signature: ClassSignature,
        c_methods: tuple[MethodSignature, ...] = (),
    ) -> None:
        self.name = class_signature.metaclass_name
        self.instance_name = class_signature.name
        self._class = class_signature
        self.c_methods: dict[str, MethodSignature] = {
            m.name: m for m in c_methods
        }

    @property
    def attributes(self) -> dict[str, Attribute]:
        """The c-attributes plus the built-in ext / proper-ext."""
        member_history = TemporalType(SetOf(ObjectType(self.instance_name)))
        attrs = dict(self._class.c_attributes)
        attrs["ext"] = Attribute("ext", member_history)
        attrs["proper-ext"] = Attribute("proper-ext", member_history)
        return attrs

    def structural_type(self) -> RecordOf:
        """The record type that the class's ``history`` value inhabits."""
        return RecordOf(
            {name: a.type for name, a in self.attributes.items()}
        )

    @property
    def unique_instance(self) -> ClassSignature:
        """The class of which this metaclass is the class."""
        return self._class

    def __repr__(self) -> str:
        return f"Metaclass({self.name!r}, instance={self.instance_name!r})"
