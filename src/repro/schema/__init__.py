"""Classes, metaclasses and their histories (paper, Section 4).

A T_Chimera class is a 7-tuple (Definition 4.1)::

    (c, type, lifespan, attr, meth, history, mc)

* ``c`` -- the class identifier;
* ``type`` -- ``static`` or ``historical`` (historical iff at least one
  *c-attribute* has a temporal domain);
* ``lifespan`` -- the (contiguous) interval during which the class has
  existed;
* ``attr`` / ``meth`` -- the attributes and methods of the *instances*;
* ``history`` -- a record value with the c-attribute values plus two
  temporal values ``ext`` and ``proper-ext`` tracking the members and
  the instances of the class over time;
* ``mc`` -- the metaclass of which the class is the unique instance.

This package provides :class:`Attribute`, :class:`MethodSignature`,
:class:`ClassSignature`, :class:`ClassHistory` and :class:`Metaclass`,
and the derived *structural*, *historical* and *static* types of a
class (the ``type``, ``h_type`` and ``s_type`` functions of Table 3).
"""

from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.schema.history import ClassHistory
from repro.schema.metaclass import Metaclass
from repro.schema.class_def import ClassKind, ClassSignature
from repro.schema.derived_types import historical_type, static_type, structural_type

__all__ = [
    "Attribute",
    "MethodSignature",
    "ClassHistory",
    "Metaclass",
    "ClassKind",
    "ClassSignature",
    "structural_type",
    "historical_type",
    "static_type",
]
