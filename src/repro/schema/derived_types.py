"""The structural, historical and static types of a class (Section 4).

For a class C with ``attr = {(a_1, T_1), ..., (a_n, T_n)}``:

* **structural type** (function ``type`` of Table 3)::

      record-of(a_1: T_1, ..., a_n: T_n)

* **historical type** (``h_type``): the record over the *temporal*
  attributes, with each domain stripped of its temporal constructor::

      record-of(a_k: T^-(T_k), ..., a_m: T^-(T_m))

  -- it is the type of ``h_state`` snapshots of the temporal part;

* **static type** (``s_type``): the record over the non-temporal
  attributes, domains unchanged.

Footnote 5: ``h_type`` (resp. ``s_type``) is *null* when the class has
no temporal (resp. no static) attributes; we return the empty record
type, and :func:`is_null_type` recognizes it.
"""

from __future__ import annotations

from repro.schema.class_def import ClassSignature
from repro.types.grammar import RecordOf, Type, t_minus


def structural_type(cls: ClassSignature) -> RecordOf:
    """``type(c)``: the record type of all instance attributes."""
    return RecordOf({name: a.type for name, a in cls.attributes.items()})


def historical_type(cls: ClassSignature) -> RecordOf:
    """``h_type(c)``: the record of temporal attributes, de-temporalized.

    Returns the empty record type when the class has no temporal
    attributes (footnote 5's null value).
    """
    return RecordOf(
        {
            name: t_minus(a.type)
            for name, a in cls.attributes.items()
            if a.is_temporal
        }
    )


def static_type(cls: ClassSignature) -> RecordOf:
    """``s_type(c)``: the record of non-temporal attributes.

    Returns the empty record type when the class has no static
    attributes (footnote 5's null value).
    """
    return RecordOf(
        {name: a.type for name, a in cls.attributes.items() if a.is_static}
    )


def is_null_type(t: Type) -> bool:
    """True for the empty record type standing in for footnote 5's null."""
    return isinstance(t, RecordOf) and t.is_empty()


def historical_type_at(cls: ClassSignature, t: int) -> RecordOf:
    """``h_type(c)`` restricted to the attributes declared at instant t.

    With schema evolution, the temporal attributes characterizing
    instances vary over time: an attribute added at d (or retired at r)
    belongs to the historical type only for ``d <= t`` (resp.
    ``t < r``).  Without evolution this coincides with
    :func:`historical_type`.
    """
    fields = {
        name: t_minus(a.type)
        for name, a in cls.attributes.items()
        if a.is_temporal and a.declared_at <= t
    }
    for name, retirements in cls.retired_attributes.items():
        if name in fields:
            continue
        for attribute, retired_at in retirements:
            if attribute.is_temporal and attribute.declared_at <= t < retired_at:
                fields[name] = t_minus(attribute.type)
                break
    return RecordOf(fields)
