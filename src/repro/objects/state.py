"""Object state projections: ``h_state``, ``s_state``, ``snapshot``.

Given an object ``o`` with value ``(a_1: v_1, ..., a_n: v_n)`` and an
instant ``t`` in its lifespan (Section 5.2):

* the **historical value** ``h_state(i, t)`` is the record of the
  *meaningful* temporal attributes at t, each evaluated at t;
* the **static value** ``s_state(i)`` is the record of the static
  attributes (their current values -- the only ones recorded);
* ``snapshot(i, t)`` (Section 5.3) projects the full state at t:
  static attributes contribute their current value, temporal ones
  their value at t.  For an object with at least one static attribute
  the snapshot is **undefined** for ``t != now`` (past values of static
  attributes are not recorded); for an object with only temporal
  attributes, ``snapshot`` coincides with ``h_state``.

Conformance note: Definition 5.3 checks ``h_state`` against
``h_type(c)``, whose record has exactly c's temporal attributes, and
the meaningful set at t equals that set whenever the object belonged to
c at t -- so taking "the meaningful attributes" (rather than "c's
attributes") in ``h_state`` is what makes the consistency check
sensitive to migration, as Section 5.2's manager/employee discussion
intends.  For ``snapshot`` at an instant where a temporal attribute is
not meaningful, we omit the attribute from the record (its function is
undefined there).
"""

from __future__ import annotations

from typing import Any

from repro.errors import LifespanError, SnapshotUndefinedError
from repro.temporal.temporalvalue import TemporalValue
from repro.objects.object import TemporalObject
from repro.values.records import RecordValue


def h_state(obj: TemporalObject, t: int, now: int | None = None) -> RecordValue:
    """The historical value of *obj* at instant *t* (Table 3).

    Raises :class:`LifespanError` when *t* is outside the lifespan.
    """
    if not obj.alive_at(t, now):
        raise LifespanError(
            f"h_state: {t} is outside the lifespan of {obj.oid!r}"
        )
    fields: dict[str, Any] = {}
    for name, value in obj.temporal_items():
        if value.defined_at(t):
            fields[name] = value.at(t)
    return RecordValue(fields)


def s_state(obj: TemporalObject) -> RecordValue:
    """The static value of *obj* (Table 3): its static attributes."""
    fields = {
        name: value
        for name, value in obj.value.items()
        if not isinstance(value, TemporalValue)
    }
    return RecordValue(fields)


def snapshot(
    obj: TemporalObject, t: int, now: int | None = None
) -> RecordValue:
    """``snapshot(i, t)``: the projected state of *obj* at instant *t*.

    * for an object with only temporal attributes this equals
      ``h_state(i, t)`` (footnote 8);
    * for an object with at least one static attribute it is defined
      only at ``t == now`` (:class:`SnapshotUndefinedError` otherwise);
    * as a particular case, the snapshot of a static object at the
      current instant is its current state.
    """
    if not obj.alive_at(t, now):
        raise LifespanError(
            f"snapshot: {t} is outside the lifespan of {obj.oid!r}"
        )
    has_static = any(
        not isinstance(v, TemporalValue) for v in obj.value.values()
    )
    if has_static:
        if now is None:
            raise SnapshotUndefinedError(
                "snapshot of an object with static attributes needs the "
                "current time (pass now=)"
            )
        if t != now:
            raise SnapshotUndefinedError(
                f"snapshot({obj.oid!r}, {t}) is undefined: the object "
                f"has static attributes and {t} != now ({now})"
            )
    fields: dict[str, Any] = {}
    for name, value in obj.temporal_items():
        if value.defined_at(t):
            fields[name] = value.at(t)
    for name, value in obj.value.items():
        if not isinstance(value, TemporalValue):
            fields[name] = value
    return RecordValue(fields)
