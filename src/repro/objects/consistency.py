"""Object consistency (Definitions 5.2-5.5).

Consistency of an object in a temporal context is checked in two steps
(Section 5.2): identify, for each instant t of the lifespan, the
attributes that characterize the object at t (for past instants these
are only the *meaningful temporal attributes* -- static values are
recorded only for the present); then check that their values are legal.

* **historical consistency** at t w.r.t. class c:
  ``h_state(i, t) in [[h_type(c)]]_t`` (Definition 5.3);
* **static consistency** w.r.t. class c:
  ``s_state(i) in [[s_type(c)]]_now`` (Definition 5.4);
* **object consistency** (Definition 5.5): every class-history pair
  ``<tau, c>`` lies inside c's lifespan; the object is historically
  consistent with c at every instant of tau; and it is statically
  consistent with its current class.

Consistency is checked against the most specific class only: Rule 6.1
guarantees consistency with all superclasses (their attribute domains
are generalizations) -- :mod:`tests.test_consistency` verifies that
implication on live databases.

Complexity.  The literal Definition 5.5 quantifies over every instant
of the lifespan; :func:`is_historically_consistent_throughout` instead
checks each pair of each temporal value once, using interval-set
inclusion for class extents, which is equivalent because extensions
vary with time only through class extents (Definition 3.5) and the
temporal value is constant on each pair.  The point-wise
:func:`is_historically_consistent` follows Definition 5.3 verbatim;
the property tests check the two agree on sampled instants (and bench
E6 measures the gap).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import UnknownClassError
from repro.objects.object import TemporalObject
from repro.objects.state import h_state, s_state
from repro.schema.class_def import ClassSignature
from repro.schema.derived_types import (
    historical_type_at,
    static_type,
)
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import TypeContext
from repro.types.extension import in_extension
from repro.types.grammar import TemporalType


class SchemaView(Protocol):
    """Access to class signatures (implemented by the database)."""

    def get_class(self, name: str) -> ClassSignature:
        ...


def meaningful_temporal_attributes(
    obj: TemporalObject, t: int
) -> tuple[str, ...]:
    """The temporal attributes of *obj* meaningful at instant *t*
    (Definition 5.2: t belongs to the domain of the attribute value)."""
    return tuple(
        name for name, value in obj.temporal_items() if value.defined_at(t)
    )


def is_historically_consistent(
    obj: TemporalObject,
    class_name: str,
    t: int,
    schema: SchemaView,
    ctx: TypeContext,
    now: int | None = None,
) -> bool:
    """Definition 5.3, verbatim: ``h_state(i,t) in [[h_type(c)]]_t``.

    With schema evolution the historical type is itself time-indexed
    (attributes added or retired after the class's creation
    characterize instances only during their declaration span), so the
    check uses ``h_type`` *as of t*.
    """
    cls = schema.get_class(class_name)
    return in_extension(
        h_state(obj, t, now), historical_type_at(cls, t), t, ctx, now=now
    )


def is_statically_consistent(
    obj: TemporalObject,
    class_name: str,
    schema: SchemaView,
    ctx: TypeContext,
    now: int,
) -> bool:
    """Definition 5.4: ``s_state(i) in [[s_type(c)]]_now``."""
    cls = schema.get_class(class_name)
    return in_extension(s_state(obj), static_type(cls), now, ctx, now=now)


def is_historically_consistent_throughout(
    obj: TemporalObject,
    class_name: str,
    span: Interval,
    schema: SchemaView,
    ctx: TypeContext,
    now: int | None = None,
) -> bool:
    """Definition 5.3 quantified over every instant of *span*.

    Equivalent to the per-instant loop (see module docstring) but
    checks each temporal-value pair once.
    """
    cls = schema.get_class(class_name)
    span = span.resolve(now)
    if span.is_empty:
        return True
    span_set = IntervalSet([span])
    declarations = _temporal_declarations(cls, now)
    for name, spans in declarations.items():
        for attribute, declared_set in spans:
            required = span_set & declared_set
            if required.is_empty:
                continue
            value = obj.temporal_value(name)
            if value is None:
                return False
            # Meaningful throughout the declared portion of the span...
            if not required.issubset(value.domain(now)):
                return False
            # ...and carrying legal values of T^-(T) at every instant.
            assert isinstance(attribute.type, TemporalType)
            restricted = value.restrict(required, now)
            if not in_extension(
                restricted, attribute.type, span.start, ctx, now=now
            ):
                return False
    # No temporal attribute may be meaningful inside the span outside
    # its declaration (h_state must have *exactly* h_type_at's
    # attributes at every instant).
    for name, value in obj.temporal_items():
        allowed = IntervalSet.empty()
        for _attribute, declared_set in declarations.get(name, ()):
            allowed = allowed | declared_set
        stray = (value.domain(now) & span_set) - allowed
        if not stray.is_empty:
            return False
    return True


def _temporal_declarations(
    cls: ClassSignature, now: int | None
) -> dict[str, list]:
    """Per attribute name: the (attribute, declaration-span) records of
    its temporal declarations -- the current one plus any retired ones
    (schema evolution)."""
    horizon = 2 ** 62
    result: dict[str, list] = {}
    for name, attribute in cls.attributes.items():
        if attribute.is_temporal:
            result.setdefault(name, []).append(
                (
                    attribute,
                    IntervalSet([Interval(attribute.declared_at, horizon)]),
                )
            )
    for name, retirements in cls.retired_attributes.items():
        for attribute, retired_at in retirements:
            if attribute.is_temporal and retired_at > attribute.declared_at:
                result.setdefault(name, []).append(
                    (
                        attribute,
                        IntervalSet(
                            [Interval(attribute.declared_at, retired_at - 1)]
                        ),
                    )
                )
    return result


def is_consistent(
    obj: TemporalObject,
    schema: SchemaView,
    ctx: TypeContext,
    now: int,
) -> bool:
    """Definition 5.5: full object consistency."""
    return not consistency_violations(obj, schema, ctx, now)


def consistency_violations(
    obj: TemporalObject,
    schema: SchemaView,
    ctx: TypeContext,
    now: int,
) -> list[str]:
    """The Definition 5.5 conditions that *obj* violates (with reasons)."""
    problems: list[str] = []
    current_class: str | None = None
    for interval, class_name in obj.class_history.pairs():
        try:
            cls = schema.get_class(class_name)
        except UnknownClassError:
            problems.append(
                f"class history names unknown class {class_name!r}"
            )
            continue
        resolved = interval.resolve(now)
        if resolved.is_empty:
            continue
        # Condition 1: tau inside the class lifespan.
        if not resolved.issubset(cls.lifespan, now):
            problems.append(
                f"class-history pair <{resolved}, {class_name}> exceeds "
                f"the class lifespan {cls.lifespan.resolve(now)}"
            )
        # Condition 2: historical consistency throughout tau.
        if not is_historically_consistent_throughout(
            obj, class_name, resolved, schema, ctx, now
        ):
            problems.append(
                f"not a historically consistent instance of "
                f"{class_name!r} throughout {resolved}"
            )
        if resolved.contains(now):
            current_class = class_name
    # Condition 3: static consistency with the current class.
    if current_class is not None:
        if not is_statically_consistent(
            obj, current_class, schema, ctx, now
        ):
            problems.append(
                f"not a statically consistent instance of "
                f"{current_class!r} at the current time {now}"
            )
    elif obj.alive_at(now, now):
        problems.append(
            f"object is alive at {now} but its class history assigns it "
            "no class (objects belong to at least one class at every "
            "instant of their lifespan)"
        )
    return problems
