"""Object references and the ``ref`` function (Definition 5.6, Table 3).

An object o *refers* to o' at instant t if the oid of o' appears in one
of o's attribute values at time t.  ``ref(i, t)`` returns the set of
oids referred to at t; referential integrity requires every such oid to
identify an object of the database whose lifespan also contains t.

Time-indexing of references: temporal attributes contribute the oids
occurring in their value *at* t (nothing when not meaningful at t);
static attributes record only their current value, so they contribute
oids only when t is the current time -- consistent with how the rest
of the model treats static state at past instants.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.objects.object import TemporalObject
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue


def oids_in_value(value: Any) -> Iterator[OID]:
    """All oids occurring (recursively) in a non-temporal value."""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, OID):
            yield current
        elif isinstance(current, (set, frozenset, list, tuple)):
            stack.extend(current)
        elif isinstance(current, RecordValue):
            stack.extend(current.values())
        elif isinstance(current, TemporalValue):
            stack.extend(current.values())


def referenced_oids(
    obj: TemporalObject, t: int, now: int | None = None
) -> frozenset[OID]:
    """``ref(i, t)``: oids the object refers to at instant *t*."""
    found: set[OID] = set()
    at_present = now is not None and t == now
    for _name, value in obj.temporal_items():
        if value.defined_at(t):
            found.update(oids_in_value(value.at(t)))
    for value in obj.value.values():
        if isinstance(value, TemporalValue):
            continue
        if at_present or now is None:
            found.update(oids_in_value(value))
    return frozenset(found)


def all_referenced_oids(obj: TemporalObject) -> frozenset[OID]:
    """Every oid occurring anywhere in the object's value, at any time."""
    found: set[OID] = set()
    for value in obj.value.values():
        found.update(oids_in_value(value))
    for value in obj.retained.values():
        found.update(oids_in_value(value))
    return frozenset(found)
