"""Object equality (Definitions 5.7-5.10).

Four notions, strictly ordered by implication (when applicable)::

    identity  =>  value  =>  instantaneous-value  =>  weak-value

* **equality by identity**: same oid (and hence, by OID-UNIQUENESS,
  same everything);
* **(shallow) value equality**: equal ``v`` components -- same
  attribute names *and* values; for historical objects this includes
  the whole history of the temporal attributes;
* **instantaneous-value equality**: there is an instant t in both
  lifespans with ``snapshot(o1, t) == snapshot(o2, t)``;
* **weak-value equality**: there are instants t', t'' with
  ``snapshot(o1, t') == snapshot(o2, t'')``.

Objects containing static attributes can be compared under the last
two notions only at the current time (their snapshot is undefined
elsewhere), as is the comparison of two static objects.

The existential searches do not loop over instants: snapshots are
piecewise-constant in t, changing only where some temporal attribute's
pair boundary falls, so it suffices to examine one representative
instant per *segment* (:func:`snapshot_segments`).

As an extension (Chimera has it; the paper defers it) we also provide
**deep value equality**: value equality where oid references are
recursively dereferenced and compared by value, with cycle-tolerant
bisimulation semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import LifespanError, SnapshotUndefinedError
from repro.objects.object import TemporalObject
from repro.objects.state import snapshot
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue
from repro.values.structure import values_equal


def equal_by_identity(o1: TemporalObject, o2: TemporalObject) -> bool:
    """Definition 5.7: same oid."""
    return o1.oid == o2.oid


def equal_by_value(o1: TemporalObject, o2: TemporalObject) -> bool:
    """Definition 5.8: equal value components (names and values).

    For historical objects this requires equality of the whole history
    of the temporal attributes.
    """
    return values_equal(o1.value_record(), o2.value_record())


def snapshot_segments(
    obj: TemporalObject, now: int
) -> Iterator[tuple[Interval, RecordValue]]:
    """The lifespan split into maximal intervals of constant snapshot.

    Only defined (and only used) for objects with no static attribute;
    each yielded pair is ``(segment, snapshot throughout it)``.
    """
    lifespan = obj.lifespan.resolve(now)
    if lifespan.is_empty:
        return
    boundaries: set[int] = {lifespan.start}
    for _name, value in obj.temporal_items():
        for interval, _carried in value.resolved_pairs(now):
            boundaries.add(interval.start)
            end = interval.end
            assert isinstance(end, int)
            if end + 1 <= lifespan.end:  # type: ignore[operator]
                boundaries.add(end + 1)
    cuts = sorted(b for b in boundaries if lifespan.contains(b))
    for i, start in enumerate(cuts):
        end = cuts[i + 1] - 1 if i + 1 < len(cuts) else lifespan.end
        segment = Interval(start, end)  # type: ignore[arg-type]
        yield segment, snapshot(obj, start, now)


def instantaneous_value_equal(
    o1: TemporalObject, o2: TemporalObject, now: int
) -> bool:
    """Definition 5.9: equal snapshots at some *common* instant."""
    if _has_static(o1) or _has_static(o2):
        # Comparable only at the current time.
        return _snapshots_equal_at(o1, o2, now, now, now)
    common = IntervalSet([o1.lifespan], now=now) & IntervalSet(
        [o2.lifespan], now=now
    )
    if common.is_empty:
        return False
    segments2 = list(snapshot_segments(o2, now))
    for segment1, snap1 in snapshot_segments(o1, now):
        for segment2, snap2 in segments2:
            overlap = segment1.intersect(segment2)
            if overlap.is_empty or common.isdisjoint(
                IntervalSet([overlap])
            ):
                continue
            if values_equal(snap1, snap2):
                return True
    return False


def weak_value_equal(
    o1: TemporalObject, o2: TemporalObject, now: int
) -> bool:
    """Definition 5.10: equal snapshots at possibly different instants."""
    if _has_static(o1) or _has_static(o2):
        return _snapshots_equal_at(o1, o2, now, now, now)
    snaps2 = [snap for _seg, snap in snapshot_segments(o2, now)]
    for _segment, snap1 in snapshot_segments(o1, now):
        if any(values_equal(snap1, snap2) for snap2 in snaps2):
            return True
    return False


def deep_value_equal(
    o1: TemporalObject,
    o2: TemporalObject,
    resolve: Callable[[OID], TemporalObject | None],
    _assumed: set[tuple[OID, OID]] | None = None,
) -> bool:
    """Deep value equality (extension): oid references are dereferenced
    and compared by value, recursively, with bisimulation semantics on
    cyclic reference graphs (``resolve`` maps an oid to its object, or
    None for dangling references, which compare by oid)."""
    assumed = _assumed if _assumed is not None else set()
    key = (min(o1.oid, o2.oid), max(o1.oid, o2.oid))
    if key in assumed:
        return True  # coinductive hypothesis
    assumed.add(key)
    if set(o1.value) != set(o2.value):
        return False
    return all(
        _deep_equal(o1.value[name], o2.value[name], resolve, assumed)
        for name in o1.value
    )


def _deep_equal(
    a: Any,
    b: Any,
    resolve: Callable[[OID], TemporalObject | None],
    assumed: set[tuple[OID, OID]],
) -> bool:
    if isinstance(a, OID) and isinstance(b, OID):
        oa, ob = resolve(a), resolve(b)
        if oa is None or ob is None:
            return a == b
        return deep_value_equal(oa, ob, resolve, assumed)
    if isinstance(a, TemporalValue) and isinstance(b, TemporalValue):
        pa, pb = a.pairs(), b.pairs()
        if len(pa) != len(pb):
            return False
        return all(
            ia == ib and _deep_equal(va, vb, resolve, assumed)
            for (ia, va), (ib, vb) in zip(pa, pb)
        )
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        if len(a) != len(b):
            return False
        unmatched = list(b)
        for item in a:
            for candidate in unmatched:
                if _deep_equal(item, candidate, resolve, assumed):
                    unmatched.remove(candidate)
                    break
            else:
                return False
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _deep_equal(x, y, resolve, assumed) for x, y in zip(a, b)
        )
    if isinstance(a, RecordValue) and isinstance(b, RecordValue):
        if set(a.names) != set(b.names):
            return False
        return all(
            _deep_equal(a[name], b[name], resolve, assumed)
            for name in a.names
        )
    return values_equal(a, b)


def _has_static(obj: TemporalObject) -> bool:
    return any(
        not isinstance(v, TemporalValue) for v in obj.value.values()
    )


def _snapshots_equal_at(
    o1: TemporalObject,
    o2: TemporalObject,
    t1: int,
    t2: int,
    now: int,
) -> bool:
    try:
        s1 = snapshot(o1, t1, now)
        s2 = snapshot(o2, t2, now)
    except (SnapshotUndefinedError, LifespanError):
        return False
    return values_equal(s1, s2)
