"""The object tuple (Definition 5.1).

:class:`TemporalObject` stores the 4-tuple ``(i, lifespan, v,
class-history)``.  The value component ``v`` is a mapping from
attribute names to values; an attribute is *temporal* exactly when its
value is a :class:`~repro.temporal.temporalvalue.TemporalValue` (for
static attributes only the current value is kept).

Class histories.  For historical objects the whole history of the most
specific class is recorded; for static objects the paper keeps only the
current class, as the single pair ``<[now, now], c>`` (Definition 5.1).
We store the full history uniformly -- the engine knows it anyway from
the class-side ``proper-ext`` (Invariant 5.1.2 makes the two views
interderivable) -- and :meth:`paper_class_history` renders the
static-object view of the definition.

Migration semantics for the value component (Section 5.2): when a
static attribute is dropped by a migration it is deleted from ``v``
with no trace; when a temporal attribute is dropped, the values it
assumed *are maintained in the object even if the attribute is not
part of the object anymore* -- its temporal value is closed, not
removed.  :class:`TemporalObject` therefore may carry temporal values
for attributes outside its current class; they are "meaningful"
(Definition 5.2) only at the instants of their domains.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import LifespanError, UnknownAttributeError
from repro.temporal.instants import Now
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue


class TemporalObject:
    """One T_Chimera object: ``(i, lifespan, v, class-history)``.

    ``retained`` holds the closed histories of temporal attributes that
    are "not part of the object anymore" (Section 5.2): dropped by a
    migration, or whose kind changed to static in the target class (in
    which case ``value`` holds the current static value *and*
    ``retained`` keeps the past function -- Definition 5.5's condition
    2 needs the history to stay checkable against the old class, while
    condition 3 needs a static slot for the new one).  State
    projections (``h_state``, ``snapshot``) read temporal attributes
    from ``value`` and ``retained`` alike; an attribute name never
    appears as temporal in both.
    """

    __slots__ = ("oid", "lifespan", "value", "retained", "class_history")

    def __init__(
        self,
        oid: OID,
        created_at: int,
        most_specific_class: str,
        attributes: Mapping[str, Any] | None = None,
    ) -> None:
        self.oid = oid
        self.lifespan: Interval = Interval.from_now(created_at)
        self.value: dict[str, Any] = dict(attributes or {})
        self.retained: dict[str, TemporalValue] = {}
        self.class_history = TemporalValue()
        self.class_history.assign(created_at, most_specific_class)

    # -- lifespan ---------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True until the object is deleted."""
        return self.lifespan.is_moving

    def alive_at(self, t: int, now: int | None = None) -> bool:
        return self.lifespan.contains(t, now)

    def end_lifespan(self, t: int) -> None:
        """Delete the object: it exists through ``t - 1``."""
        if not self.lifespan.is_moving:
            raise LifespanError(f"object {self.oid!r} was already deleted")
        if t <= self.lifespan.start:
            raise LifespanError(
                f"object {self.oid!r} cannot be deleted in its creation "
                "tick"
            )
        self.lifespan = Interval(self.lifespan.start, t - 1)

    # -- the value component ------------------------------------------------------

    def attribute_names(self) -> tuple[str, ...]:
        """All attribute names present in ``v`` (including temporal
        attributes retained from past classes)."""
        return tuple(self.value)

    def get_attribute(self, name: str) -> Any:
        try:
            return self.value[name]
        except KeyError:
            raise UnknownAttributeError(
                f"object {self.oid!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self.value

    def temporal_attribute_names(self) -> tuple[str, ...]:
        """Attributes whose value is a temporal value (current class
        only; retained histories excluded)."""
        return tuple(
            name
            for name, value in self.value.items()
            if isinstance(value, TemporalValue)
        )

    def temporal_items(self) -> Iterator[tuple[str, TemporalValue]]:
        """All temporal histories of the object: the temporal attribute
        values plus the retained histories of dropped attributes."""
        for name, value in self.value.items():
            if isinstance(value, TemporalValue):
                yield name, value
        for name, value in self.retained.items():
            if not isinstance(self.value.get(name), TemporalValue):
                yield name, value

    def temporal_value(self, name: str) -> TemporalValue | None:
        """The temporal history recorded under *name*, live or retained."""
        value = self.value.get(name)
        if isinstance(value, TemporalValue):
            return value
        return self.retained.get(name)

    def static_attribute_names(self) -> tuple[str, ...]:
        """Attributes whose value is a plain (current-only) value."""
        return tuple(
            name
            for name, value in self.value.items()
            if not isinstance(value, TemporalValue)
        )

    @property
    def is_historical(self) -> bool:
        """True iff the object has at least one temporal attribute."""
        return any(
            isinstance(v, TemporalValue) for v in self.value.values()
        )

    @property
    def is_static(self) -> bool:
        return not self.is_historical

    def value_record(self) -> RecordValue:
        """The ``v`` component as the paper's record value."""
        return RecordValue(dict(self.value))

    # -- class history ---------------------------------------------------------------

    def most_specific_class(self, t: int) -> str | None:
        """The most specific class the object belongs to at instant *t*."""
        return self.class_history.get(t)

    def current_class(self, now: int) -> str:
        """The most specific class at the current time."""
        cls = self.class_history.get(now)
        if cls is None:
            raise LifespanError(
                f"object {self.oid!r} does not exist at time {now}"
            )
        return cls

    def classes_over_time(self) -> Iterator[tuple[Interval, str]]:
        """The ``<tau_i, c_i>`` pairs of the class history."""
        return iter(self.class_history.pairs())

    def paper_class_history(self, now: int) -> TemporalValue:
        """The ``class-history`` component as Definition 5.1 stores it.

        For a historical object: the full history.  For a static
        object: the single pair ``<[now, now], c>`` with c the current
        most specific class.
        """
        if self.is_historical:
            return self.class_history
        current = self.class_history.get(now)
        result = TemporalValue()
        if current is not None:
            result.put(Interval(now, now), current)
        return result

    def __repr__(self) -> str:
        return (
            f"TemporalObject({self.oid!r}, lifespan={self.lifespan}, "
            f"class_history={self.class_history!r})"
        )
