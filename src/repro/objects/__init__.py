"""Objects (paper, Section 5).

An object is a 4-tuple (Definition 5.1)::

    (i, lifespan, v, class-history)

* ``i`` -- the oid;
* ``lifespan`` -- the (contiguous) interval during which the object
  exists;
* ``v`` -- a record of attribute values: temporal attributes carry
  temporal values (partial functions from TIME), static attributes
  carry plain values (current value only);
* ``class-history`` -- a temporal value recording the most specific
  class the object belongs to over time (object *migration*).

This package provides:

* :mod:`repro.objects.object` -- :class:`TemporalObject`;
* :mod:`repro.objects.state` -- ``h_state``, ``s_state`` and
  ``snapshot`` (Table 3, Sections 5.2-5.3);
* :mod:`repro.objects.consistency` -- meaningful attributes and the
  historical / static / full consistency notions (Defs. 5.2-5.5);
* :mod:`repro.objects.equality` -- the four equality notions
  (Defs. 5.7-5.10) plus deep value equality as an extension;
* :mod:`repro.objects.references` -- the ``ref`` function and
  referential integrity support (Def. 5.6).
"""

from repro.objects.object import TemporalObject
from repro.objects.state import h_state, s_state, snapshot
from repro.objects.consistency import (
    is_consistent,
    is_historically_consistent,
    is_statically_consistent,
    meaningful_temporal_attributes,
)
from repro.objects.equality import (
    equal_by_identity,
    equal_by_value,
    instantaneous_value_equal,
    weak_value_equal,
)
from repro.objects.references import referenced_oids

__all__ = [
    "TemporalObject",
    "h_state",
    "s_state",
    "snapshot",
    "meaningful_temporal_attributes",
    "is_historically_consistent",
    "is_statically_consistent",
    "is_consistent",
    "equal_by_identity",
    "equal_by_value",
    "instantaneous_value_equal",
    "weak_value_equal",
    "referenced_oids",
]
