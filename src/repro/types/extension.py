"""Type extensions ``[[T]]_t`` (Definition 3.5).

``in_extension(v, T, t, ctx)`` decides ``v in [[T]]_t``:

* ``null in [[T]]_t`` for every T;
* ``[[B]]_t = dom(B)`` for basic value types;
* ``[[time]]_t = TIME``;
* ``[[c]]_t = pi(c, t)`` for object types;
* ``[[set-of(T)]]_t = 2^[[T]]_t``;
* ``[[list-of(T)]]_t`` = finite sequences over ``[[T]]_t``;
* ``[[record-of(a1:T1,...)]]_t`` = records with exactly those
  attributes, component-wise;
* ``[[temporal(T)]]_t`` = partial functions f from TIME such that
  ``f(t') in [[T]]_t'`` wherever defined.  Note the *primed* instant:
  a temporal value is checked against the extension of T at each
  instant of its own domain, not at t.  In fact ``[[temporal(T)]]_t``
  does not depend on t at all -- and neither does any other clause
  except the object-type one, which is the paper's point in writing
  the interpretation "by fixing a time instant t".

Efficiency: for a pair ``<tau, v>`` of a temporal value, membership of
``v`` in ``[[T]]_t'`` must hold for *every* ``t' in tau``.  When T
mentions no object types the check is time-independent and done once;
when T is itself an object type we use the context's
``member_throughout`` (an interval-set inclusion, not a per-instant
loop); only for structured types that *contain* object types do we fall
back to representative instants per pair -- still per-pair, never
per-instant, because extents are piecewise-constant... almost: they are
not, so for full fidelity the fallback checks every instant of the pair
(tests keep such histories short; the engine's own consistency checker
uses the fast paths).
"""

from __future__ import annotations

from typing import Any

from repro.errors import UnresolvedNowError
from repro.temporal.instants import is_instant
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import EMPTY_CONTEXT, TypeContext
from repro.types.grammar import (
    BasicType,
    BottomType,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
)
from repro.values.null import is_null
from repro.values.oid import OID
from repro.values.records import RecordValue

_BASIC_CHECKS = {
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "real": lambda v: isinstance(v, float)
    or (isinstance(v, int) and not isinstance(v, bool)),
    "bool": lambda v: isinstance(v, bool),
    "character": lambda v: isinstance(v, str) and len(v) == 1,
    "string": lambda v: isinstance(v, str),
    "time": is_instant,
}


def in_basic_domain(value: Any, basic: BasicType) -> bool:
    """``value in dom(B)`` for a basic predefined value type.

    ``dom(real)`` is the set of real numbers, so integers qualify (the
    naturals and integers embed in R); ``dom(integer)`` excludes
    booleans (bool is its own basic type with domain {true, false}).
    """
    return _BASIC_CHECKS[basic.name](value)


def in_extension(
    value: Any,
    t: Type,
    at: int,
    ctx: TypeContext = EMPTY_CONTEXT,
    now: int | None = None,
) -> bool:
    """Decide ``value in [[t]]_at`` under typing context *ctx*.

    *now* resolves any open ``[s, now]`` pair inside temporal values;
    when omitted, the context's clock is used, and if the context has
    no clock either, a temporal value with an open pair raises
    :class:`UnresolvedNowError`.
    """
    if now is None:
        now = ctx.current_time
    return _member(value, t, at, ctx, now)


def _member(
    value: Any, t: Type, at: int, ctx: TypeContext, now: int | None
) -> bool:
    if is_null(value):
        return True
    if isinstance(t, BottomType):
        return False  # only null inhabits the bottom type
    if isinstance(t, BasicType):
        return in_basic_domain(value, t)
    if isinstance(t, ObjectType):
        return isinstance(value, OID) and value in ctx.extent(
            t.class_name, at
        )
    if isinstance(t, SetOf):
        if not isinstance(value, (set, frozenset)):
            return False
        return all(_member(v, t.element, at, ctx, now) for v in value)
    if isinstance(t, ListOf):
        if not isinstance(value, (list, tuple)):
            return False
        return all(_member(v, t.element, at, ctx, now) for v in value)
    if isinstance(t, RecordOf):
        if not isinstance(value, RecordValue):
            return False
        if set(value.names) != set(t.names):
            return False
        return all(
            _member(value[name], t.field_type(name), at, ctx, now)
            for name in t.names
        )
    if isinstance(t, TemporalType):
        return _temporal_member(value, t, ctx, now)
    raise AssertionError(f"unhandled type term {t!r}")


def _temporal_member(
    value: Any, t: TemporalType, ctx: TypeContext, now: int | None
) -> bool:
    if not isinstance(value, TemporalValue):
        return False
    inner = t.argument
    time_independent = not inner.mentions_object_types()
    for interval, carried in value.pairs():
        if time_independent:
            # [[inner]]_t is the same set for every t: check once.
            if not _member(carried, inner, interval.start, ctx, now):
                return False
            continue
        if interval.is_moving and now is None:
            raise UnresolvedNowError(
                "temporal value has an open [t, now] pair; pass now= or "
                "use a context with a clock"
            )
        resolved = interval.resolve(now)
        if resolved.is_empty:
            continue
        if isinstance(inner, ObjectType) and isinstance(carried, OID):
            # Fast path: interval-set inclusion instead of a time loop.
            if not ctx.member_throughout(  # type: ignore[attr-defined]
                inner.class_name, carried, IntervalSet([resolved])
            ):
                return False
            continue
        if is_null(carried):
            continue
        for instant in resolved.instants():
            if not _member(carried, inner, instant, ctx, now):
                return False
    return True
