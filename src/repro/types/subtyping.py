"""The subtype order ``<=_T`` and least upper bounds (Definition 6.1).

``T2 <=_T T1`` iff one of:

* ``T1 = T2``;
* both are object types and ``T2 <=_ISA T1`` (T2 a subclass of T1);
* ``set-of``/``list-of`` with element types in the relation (covariant);
* records over the *same* attribute names with field types in the
  relation, component-wise (covariant);
* ``temporal(T2') <=_T temporal(T1')`` iff ``T2' <=_T T1'``.

Direction of the object-type and record clauses.  The EDBT text of
Definition 6.1 prints the ISA premise as ``T1 <=_ISA (T2)`` and the
record premise as ``T'_i <=_T T''_i`` (with the primes on T1's fields),
which read literally would make subtyping contravariant in both.  That
reading contradicts Theorem 6.1 (``T1 <=_T T2`` implies
``[[T1]]_t ⊆ [[T2]]_t``): for object types, ``[[c2]]_t ⊆ [[c1]]_t``
holds exactly when c2 is a *subclass* of c1 (Invariant 6.1), and for
records extension inclusion is component-wise covariant by Definition
3.5.  We therefore implement the covariant reading, which Theorem 6.1
forces; the property test ``test_theorem_6_1`` exercises the
implication.

The type poset and lub.  ``(T, <=_T)`` is a poset; the typing rules for
sets and lists (Definition 3.6) use the least upper bound ``⊔`` of the
element types.  A lub need not exist (e.g. ``integer ⊔ string``, or two
classes with no common superclass, or classes whose minimal common
superclasses are incomparable); :func:`lub` raises :class:`NoLubError`
in that case, and :func:`try_lub` returns ``None``.

The ISA order itself is supplied by an :class:`IsaOrder` -- implemented
by :class:`repro.inheritance.isa.IsaHierarchy` for real schemas and by
:class:`EmptyIsaOrder` (no classes related) for the plain value world.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Protocol, runtime_checkable

from repro import perf
from repro.errors import NoLubError
from repro.types.grammar import (
    BottomType,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
)


@runtime_checkable
class IsaOrder(Protocol):
    """The partial order ``<=_ISA`` on class identifiers."""

    def isa_le(self, sub: str, sup: str) -> bool:
        """True iff class *sub* is *sup* or a (transitive) subclass."""
        ...

    def class_lub(self, names: Iterable[str]) -> str | None:
        """The least common superclass, or None when it does not exist."""
        ...


class EmptyIsaOrder:
    """The discrete ISA order: no class is related to any other."""

    def isa_le(self, sub: str, sup: str) -> bool:
        return sub == sup

    def class_lub(self, names: Iterable[str]) -> str | None:
        distinct = set(names)
        if len(distinct) == 1:
            return next(iter(distinct))
        return None


EMPTY_ISA = EmptyIsaOrder()


# ---------------------------------------------------------------------------
# Memoization.  Type terms are immutable and hashable, so the only thing
# that can change the answer of ``is_subtype``/``lub`` for a fixed pair
# of terms is the ISA order itself.  Orders that mutate expose a
# ``generation`` counter (:class:`repro.inheritance.isa.IsaHierarchy`
# bumps it on every DAG change); stateless orders (e.g.
# :class:`EmptyIsaOrder`) have no counter and default to generation 0.
# One memo per ISA order (weakly referenced), dropped wholesale when the
# generation moves -- repeated structural comparisons during type_check,
# refinement and consistency checks become O(1) amortized.
# ---------------------------------------------------------------------------

_MEMO_LIMIT = 4096  # per-table entry cap; full clear past it
_MISS = object()

_SUBTYPE_COUNTER = perf.counter("subtyping.is_subtype")
_LUB_COUNTER = perf.counter("subtyping.lub")


class _IsaMemo:
    __slots__ = ("generation", "subtype", "lub")

    def __init__(self, generation: int) -> None:
        self.generation = generation
        self.subtype: dict[tuple[Type, Type], bool] = {}
        self.lub: dict[tuple[Type, Type], "Type | None"] = {}


_MEMOS: "weakref.WeakKeyDictionary[Any, _IsaMemo]" = (
    weakref.WeakKeyDictionary()
)


def _memo_for(isa: IsaOrder) -> _IsaMemo | None:
    """The memo for *isa*, or None when memoization is off/unsupported."""
    if not perf.is_enabled:
        return None
    generation = getattr(isa, "generation", 0)
    if not isinstance(generation, int):
        return None
    try:
        memo = _MEMOS.get(isa)
        if memo is None:
            memo = _IsaMemo(generation)
            _MEMOS[isa] = memo
    except TypeError:  # unhashable / non-weakref'able order
        return None
    if memo.generation != generation:
        _SUBTYPE_COUNTER.invalidate(len(memo.subtype))
        _LUB_COUNTER.invalidate(len(memo.lub))
        memo.subtype.clear()
        memo.lub.clear()
        memo.generation = generation
    return memo


def is_subtype(t2: Type, t1: Type, isa: IsaOrder = EMPTY_ISA) -> bool:
    """Decide ``t2 <=_T t1`` under the given ISA order (Def. 6.1).

    Memoized per ISA order and generation; recursive structural
    comparisons hit the memo at every level.
    """
    memo = _memo_for(isa)
    if memo is None:
        return _is_subtype(t2, t1, isa)
    table = memo.subtype
    key = (t2, t1)
    cached = table.get(key, _MISS)
    if cached is not _MISS:
        _SUBTYPE_COUNTER.hit()
        return cached  # type: ignore[return-value]
    _SUBTYPE_COUNTER.miss()
    result = _is_subtype(t2, t1, isa)
    if len(table) >= _MEMO_LIMIT:
        _SUBTYPE_COUNTER.invalidate(len(table))
        table.clear()
    table[key] = result
    return result


def _is_subtype(t2: Type, t1: Type, isa: IsaOrder) -> bool:
    """The Definition 6.1 case analysis (uncached)."""
    if t1 == t2:
        return True
    if isinstance(t2, BottomType):
        return True
    if isinstance(t2, ObjectType) and isinstance(t1, ObjectType):
        return isa.isa_le(t2.class_name, t1.class_name)
    if isinstance(t2, SetOf) and isinstance(t1, SetOf):
        return is_subtype(t2.element, t1.element, isa)
    if isinstance(t2, ListOf) and isinstance(t1, ListOf):
        return is_subtype(t2.element, t1.element, isa)
    if isinstance(t2, RecordOf) and isinstance(t1, RecordOf):
        if set(t2.names) != set(t1.names):
            return False
        return all(
            is_subtype(t2.field_type(name), t1.field_type(name), isa)
            for name in t1.names
        )
    if isinstance(t2, TemporalType) and isinstance(t1, TemporalType):
        return is_subtype(t2.argument, t1.argument, isa)
    return False


def lub(types: Iterable[Type], isa: IsaOrder = EMPTY_ISA) -> Type:
    """The least upper bound ``⊔`` of a non-empty set of types.

    Raises :class:`NoLubError` when the types have no lub in the poset.
    """
    result = try_lub(types, isa)
    if result is None:
        raise NoLubError("the types have no least upper bound")
    return result


def try_lub(types: Iterable[Type], isa: IsaOrder = EMPTY_ISA) -> Type | None:
    """Like :func:`lub` but returns None instead of raising."""
    items = list(types)
    if not items:
        raise NoLubError("the lub of an empty set of types is undefined")
    result: Type | None = items[0]
    for t in items[1:]:
        if result is None:
            return None
        result = _lub2(result, t, isa)
    return result


def _lub2(a: Type, b: Type, isa: IsaOrder) -> Type | None:
    """Binary lub, memoized like :func:`is_subtype`."""
    memo = _memo_for(isa)
    if memo is None:
        return _lub2_fresh(a, b, isa)
    table = memo.lub
    key = (a, b)
    cached = table.get(key, _MISS)
    if cached is not _MISS:
        _LUB_COUNTER.hit()
        return cached  # type: ignore[return-value]
    _LUB_COUNTER.miss()
    result = _lub2_fresh(a, b, isa)
    if len(table) >= _MEMO_LIMIT:
        _LUB_COUNTER.invalidate(len(table))
        table.clear()
    table[key] = result
    return result


def _lub2_fresh(a: Type, b: Type, isa: IsaOrder) -> Type | None:
    if a == b:
        return a
    if isinstance(a, BottomType):
        return b
    if isinstance(b, BottomType):
        return a
    if isinstance(a, ObjectType) and isinstance(b, ObjectType):
        name = isa.class_lub([a.class_name, b.class_name])
        return ObjectType(name) if name is not None else None
    if isinstance(a, SetOf) and isinstance(b, SetOf):
        inner = _lub2(a.element, b.element, isa)
        return SetOf(inner) if inner is not None else None
    if isinstance(a, ListOf) and isinstance(b, ListOf):
        inner = _lub2(a.element, b.element, isa)
        return ListOf(inner) if inner is not None else None
    if isinstance(a, RecordOf) and isinstance(b, RecordOf):
        if set(a.names) != set(b.names):
            return None
        fields: dict[str, Type] = {}
        for name in a.names:
            inner = _lub2(a.field_type(name), b.field_type(name), isa)
            if inner is None:
                return None
            fields[name] = inner
        return RecordOf(fields)
    if isinstance(a, TemporalType) and isinstance(b, TemporalType):
        inner = _lub2(a.argument, b.argument, isa)
        if inner is None or not inner.is_chimera():
            return None
        return TemporalType(inner)
    return None
