"""The typing rules for values (Definition 3.6) and type inference.

Definition 3.6 gives one inference rule per value former:

* ``null : T`` for every type T;
* ``v : B`` when ``v in dom(B)``;
* ``v : time`` when v is an instant;
* ``i : c`` when ``i in pi(c, t)`` for some instant t -- note the
  existential over t: an oid is typeable by every class it has *ever*
  belonged to;
* ``{v1,...,vn} : set-of(⊔ Ti)`` from ``vi : Ti`` (and likewise lists);
* records component-wise, with distinct attribute names;
* ``{(t1,v1),...,(tn,vn)} : temporal(T)`` from ``vi : T`` and distinct
  instants ti.

Two faces of the rules are exposed:

:func:`is_deducible` -- the *checking* judgment ``v : T``.  It is
syntax-directed: for collections we check every element against the
target element type instead of searching for element types ``Ti`` whose
lub is the target.  The two formulations coincide because deducibility
is upward closed along ``<=_T``: if ``v : T'`` is deducible and
``T' <=_T T``, then ``v : T`` is deducible directly -- for oids because
``pi`` is monotone along ISA (a member of a subclass is a member of the
superclass, Invariant 6.1), and for structured values by induction.
Hence ``vi : Ti`` with ``⊔Ti = T`` gives ``vi : T`` for every i, and
conversely ``vi : T`` for all i exhibits ``Ti = T`` with lub T.
``test_deduction_lub_formulation_agrees`` exercises this equivalence.

:func:`infer_type` -- the *synthesis* judgment: computes a type for the
value (the lub-based reading, literally).  Inference fails with
:class:`NoLubError` on heterogeneous collections without a lub; empty
collections infer ``set-of(⊥)`` / ``list-of(⊥)`` with the inference-only
bottom type.  For an oid, the inferred type is the *most specific* class
containing it (at the context's current time when set, else ever);
synthesis prefers specificity, checking accepts any ever-containing
class, exactly as the rule's existential allows.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NoLubError, TypeCheckError
from repro.temporal.instants import is_instant
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import EMPTY_CONTEXT, TypeContext
from repro.types.extension import in_basic_domain
from repro.types.grammar import (
    BOOL,
    BOTTOM,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    BasicType,
    BottomType,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
)
from repro.types.subtyping import lub
from repro.values.null import is_null
from repro.values.oid import OID
from repro.values.records import RecordValue


def is_deducible(
    value: Any,
    t: Type,
    ctx: TypeContext = EMPTY_CONTEXT,
) -> bool:
    """Decide whether ``value : t`` is derivable by the Def. 3.6 rules."""
    if is_null(value):
        return True
    if isinstance(t, BottomType):
        return False
    if isinstance(t, BasicType):
        return in_basic_domain(value, t)
    if isinstance(t, ObjectType):
        return isinstance(value, OID) and ctx.ever_member(  # type: ignore[attr-defined]
            t.class_name, value
        )
    if isinstance(t, SetOf):
        if not isinstance(value, (set, frozenset)):
            return False
        return all(is_deducible(v, t.element, ctx) for v in value)
    if isinstance(t, ListOf):
        if not isinstance(value, (list, tuple)):
            return False
        return all(is_deducible(v, t.element, ctx) for v in value)
    if isinstance(t, RecordOf):
        if not isinstance(value, RecordValue):
            return False
        if set(value.names) != set(t.names):
            return False
        return all(
            is_deducible(value[name], t.field_type(name), ctx)
            for name in t.names
        )
    if isinstance(t, TemporalType):
        if not isinstance(value, TemporalValue):
            return False
        # Distinctness of the instants t_i is the pairwise disjointness
        # of the intervals, which TemporalValue maintains structurally.
        return all(is_deducible(v, t.argument, ctx) for v in value.values())
    raise AssertionError(f"unhandled type term {t!r}")


def infer_type(
    value: Any,
    ctx: TypeContext = EMPTY_CONTEXT,
) -> Type:
    """Synthesize a type for *value* (the lub-based reading of Def. 3.6).

    Raises :class:`TypeCheckError` for things that are not T_Chimera
    values at all (e.g. a dict), and :class:`NoLubError` for
    heterogeneous collections with no lub.  ``null`` has every type;
    by convention inference returns the bottom type for it.
    """
    if is_null(value):
        return BOTTOM
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return CHARACTER if len(value) == 1 else STRING
    if isinstance(value, OID):
        return ObjectType(_most_specific_class(value, ctx))
    if isinstance(value, (set, frozenset)):
        element = _elements_lub([infer_type(v, ctx) for v in value], ctx)
        return SetOf(element)
    if isinstance(value, (list, tuple)):
        element = _elements_lub([infer_type(v, ctx) for v in value], ctx)
        return ListOf(element)
    if isinstance(value, RecordValue):
        return RecordOf(
            {name: infer_type(v, ctx) for name, v in value.items()}
        )
    if isinstance(value, TemporalValue):
        inner = _elements_lub(
            [infer_type(v, ctx) for v in value.values()], ctx
        )
        if isinstance(inner, BottomType):
            # An everywhere-undefined temporal value; any carrier works.
            return TemporalType(INTEGER)
        if not inner.is_chimera():
            raise TypeCheckError(
                f"temporal value carries non-Chimera values of type "
                f"{inner!r}"
            )
        return TemporalType(inner)
    raise TypeCheckError(f"{value!r} is not a T_Chimera value")


def _elements_lub(types: list[Type], ctx: TypeContext) -> Type:
    if not types:
        return BOTTOM
    return lub(types, ctx.isa)


def _most_specific_class(oid: OID, ctx: TypeContext) -> str:
    """The most specific class containing *oid*.

    Prefers membership at the context's current time; falls back to
    membership at any time.  Raises :class:`TypeCheckError` when the
    context knows nothing about the oid (the ``i : c`` rule has no
    applicable premise).
    """
    candidates = getattr(ctx, "classes_of", None)
    if callable(candidates):
        names = list(candidates(oid))
    else:
        names = []
    if not names:
        raise TypeCheckError(
            f"cannot infer a type for {oid!r}: the context records no "
            "class membership for it"
        )
    # The most specific: a candidate below all others in the ISA order.
    isa = ctx.isa
    for name in names:
        if all(isa.isa_le(name, other) for other in names):
            return name
    raise NoLubError(
        f"oid {oid!r} belongs to incomparable classes {sorted(names)}"
    )
