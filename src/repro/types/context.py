"""Typing contexts: the information the type system needs from a schema.

The extensions ``[[T]]_t`` (Definition 3.5) and the typing rules
(Definition 3.6) are parameterized by the function
``pi : CI x TIME -> 2^OI`` assigning each class its extent at each
instant, and -- for the lub in the set/list rules -- by the ISA order.
A :class:`TypeContext` packages both.

Three implementations:

* :class:`EmptyTypeContext` -- no classes at all (the pure value world);
* :class:`DictTypeContext` -- extents given explicitly as
  ``{class_name: {oid: IntervalSet}}``; used by tests, the theorem
  checkers and the workload generator;
* ``TemporalDatabase`` (in :mod:`repro.database.database`) -- the live
  engine, which implements this protocol against its class histories.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.temporal.intervalsets import IntervalSet
from repro.types.subtyping import EMPTY_ISA, IsaOrder
from repro.values.oid import OID


@runtime_checkable
class TypeContext(Protocol):
    """What the type system needs to know about classes and objects."""

    def extent(self, class_name: str, t: int) -> frozenset[OID]:
        """``pi(c, t)``: oids of members of *class_name* at instant *t*."""
        ...

    def membership_times(self, class_name: str, oid: OID) -> IntervalSet:
        """The instants at which *oid* is a member of *class_name*.

        (Empty when never a member; this is ``c_lifespan`` in object
        terms.)  ``ever_member`` and ``member_throughout`` derive from
        it.
        """
        ...

    def known_class(self, class_name: str) -> bool:
        """True iff *class_name* is a class of the schema."""
        ...

    @property
    def current_time(self) -> int | None:
        """The clock reading, when the context has a clock."""
        ...

    @property
    def isa(self) -> IsaOrder:
        """The ISA order on class identifiers."""
        ...


class _MembershipMixin:
    """Derived membership queries shared by the implementations."""

    def ever_member(self, class_name: str, oid: OID) -> bool:
        """True iff there is an instant at which *oid* belongs to the class."""
        return not self.membership_times(class_name, oid).is_empty  # type: ignore[attr-defined]

    def member_throughout(
        self, class_name: str, oid: OID, times: IntervalSet
    ) -> bool:
        """True iff *oid* belongs to the class at every instant of *times*."""
        return times.issubset(self.membership_times(class_name, oid))  # type: ignore[attr-defined]


class EmptyTypeContext(_MembershipMixin):
    """A context with no classes: every class lookup is empty."""

    def classes_of(self, oid: OID) -> tuple[str, ...]:
        """Classes whose extent has ever contained *oid* (none here)."""
        return ()

    def extent(self, class_name: str, t: int) -> frozenset[OID]:
        return frozenset()

    def membership_times(self, class_name: str, oid: OID) -> IntervalSet:
        return IntervalSet.empty()

    def known_class(self, class_name: str) -> bool:
        return False

    @property
    def current_time(self) -> int | None:
        return None

    @property
    def isa(self) -> IsaOrder:
        return EMPTY_ISA


EMPTY_CONTEXT = EmptyTypeContext()


class DictTypeContext(_MembershipMixin):
    """A typing context built from explicit membership interval sets.

    ``memberships`` maps each class name to ``{oid: interval-set}``:
    the instants at which each oid is a member of the class.  The
    caller is responsible for ISA coherence (a subclass member should
    also appear under its superclasses), exactly as Invariant 6.1
    demands of a real schema; :class:`repro.database.integrity` checks
    that coherence for live databases.
    """

    def __init__(
        self,
        memberships: Mapping[str, Mapping[OID, IntervalSet]] | None = None,
        isa: IsaOrder = EMPTY_ISA,
        now: int | None = None,
    ) -> None:
        self._memberships: dict[str, dict[OID, IntervalSet]] = {
            cls: dict(members) for cls, members in (memberships or {}).items()
        }
        self._isa = isa
        self._now = now

    @classmethod
    def from_constant_extents(
        cls,
        extents: Mapping[str, Iterable[OID]],
        horizon: tuple[int, int] = (0, 10**9),
        isa: IsaOrder = EMPTY_ISA,
        now: int | None = None,
    ) -> "DictTypeContext":
        """A context whose extents do not vary over *horizon*."""
        span = IntervalSet.span(*horizon)
        memberships = {
            name: {oid: span for oid in oids} for name, oids in extents.items()
        }
        return cls(memberships, isa=isa, now=now)

    def add_membership(
        self, class_name: str, oid: OID, times: IntervalSet
    ) -> None:
        """Record that *oid* belongs to *class_name* throughout *times*."""
        members = self._memberships.setdefault(class_name, {})
        members[oid] = members.get(oid, IntervalSet.empty()) | times

    # -- TypeContext protocol ---------------------------------------------------

    def classes_of(self, oid: OID) -> tuple[str, ...]:
        """Classes whose extent contains *oid*.

        At the current time when the context has a clock, else at any
        time -- matching how type inference resolves the existential in
        the ``i : c`` rule.
        """
        names = []
        for class_name, members in self._memberships.items():
            times = members.get(oid)
            if times is None or times.is_empty:
                continue
            if self._now is None or self._now in times:
                names.append(class_name)
        return tuple(names)

    def extent(self, class_name: str, t: int) -> frozenset[OID]:
        members = self._memberships.get(class_name, {})
        return frozenset(oid for oid, times in members.items() if t in times)

    def membership_times(self, class_name: str, oid: OID) -> IntervalSet:
        return self._memberships.get(class_name, {}).get(
            oid, IntervalSet.empty()
        )

    def known_class(self, class_name: str) -> bool:
        return class_name in self._memberships

    @property
    def current_time(self) -> int | None:
        return self._now

    @property
    def isa(self) -> IsaOrder:
        return self._isa
