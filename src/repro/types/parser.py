"""Concrete syntax for T_Chimera types.

The paper writes types as, e.g.::

    time
    temporal(integer)
    list-of(boolean)
    temporal(set-of(project))
    record-of(task: temporal(project), startbudget: real, endbudget: real)

:func:`parse_type` accepts exactly this syntax (``boolean`` is accepted
as an alias of ``bool``, and ``setof``/``listof``/``recordof`` without
the hyphen are tolerated).  Any identifier that is not a basic type name
or a constructor is an object type (a class name), per Definition 3.1.

:func:`format_type` is the inverse, and round-trips:
``parse_type(format_type(t)) == t``.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import TypeSyntaxError
from repro.types.grammar import (
    BASIC_TYPES,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_-]*)|(?P<punct>[(),:]))"
)

_ALIASES = {"boolean": "bool", "int": "integer", "char": "character"}
_CONSTRUCTORS = {"set-of", "setof", "list-of", "listof", "record-of",
                 "recordof", "temporal"}


class _Token(NamedTuple):
    kind: str  # "ident" | "punct" | "end"
    text: str
    pos: int


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise TypeSyntaxError(
                    f"unexpected character {text[pos]!r} at position {pos} "
                    f"in type {text!r}"
                )
            break
        if match.group("ident") is not None:
            yield _Token("ident", match.group("ident"), match.start("ident"))
        else:
            yield _Token("punct", match.group("punct"), match.start("punct"))
        pos = match.end()
    yield _Token("end", "", len(text))


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._next()
        if token.text != text:
            raise TypeSyntaxError(
                f"expected {text!r} at position {token.pos} in type "
                f"{self._text!r}, got {token.text!r}"
            )

    def parse(self) -> Type:
        result = self.type_()
        tail = self._next()
        if tail.kind != "end":
            raise TypeSyntaxError(
                f"trailing input {tail.text!r} at position {tail.pos} "
                f"in type {self._text!r}"
            )
        return result

    def type_(self) -> Type:
        token = self._next()
        if token.kind != "ident":
            raise TypeSyntaxError(
                f"expected a type at position {token.pos} in "
                f"{self._text!r}, got {token.text!r}"
            )
        name = _ALIASES.get(token.text, token.text)
        lowered = name.lower()
        if lowered in _CONSTRUCTORS:
            return self._constructor(lowered)
        if name in BASIC_TYPES:
            return BASIC_TYPES[name]
        return ObjectType(name)

    def _constructor(self, name: str) -> Type:
        self._expect("(")
        if name in ("set-of", "setof"):
            inner = self.type_()
            self._expect(")")
            return SetOf(inner)
        if name in ("list-of", "listof"):
            inner = self.type_()
            self._expect(")")
            return ListOf(inner)
        if name == "temporal":
            inner = self.type_()
            self._expect(")")
            return TemporalType(inner)
        # record-of(a1: T1, ..., an: Tn); record-of() is the empty record.
        fields: dict[str, Type] = {}
        if self._peek().text == ")":
            self._next()
            return RecordOf(fields)
        while True:
            name_token = self._next()
            if name_token.kind != "ident":
                raise TypeSyntaxError(
                    f"expected an attribute name at position "
                    f"{name_token.pos} in {self._text!r}"
                )
            self._expect(":")
            if name_token.text in fields:
                raise TypeSyntaxError(
                    f"record type declares attribute "
                    f"{name_token.text!r} twice in {self._text!r}"
                )
            fields[name_token.text] = self.type_()
            token = self._next()
            if token.text == ")":
                return RecordOf(fields)
            if token.text != ",":
                raise TypeSyntaxError(
                    f"expected ',' or ')' at position {token.pos} in "
                    f"{self._text!r}, got {token.text!r}"
                )


def parse_type(text: str) -> Type:
    """Parse the paper's concrete type syntax into a type term."""
    if not isinstance(text, str) or not text.strip():
        raise TypeSyntaxError(f"not a type expression: {text!r}")
    return _Parser(text).parse()


def format_type(t: Type) -> str:
    """Render a type term in the paper's concrete syntax."""
    if not isinstance(t, Type):
        raise TypeSyntaxError(f"not a type term: {t!r}")
    return repr(t)
