"""The T_Chimera type system (paper, Sections 3 and 6).

The type grammar (Definitions 3.1-3.4)::

    T  ::=  time                                  (T_Chimera only)
         |  integer | real | bool | character | string     (BVT)
         |  c                                     (object types, c in CI)
         |  set-of(T) | list-of(T)
         |  record-of(a1: T1, ..., an: TN)
         |  temporal(T')   where T' is a Chimera type (no temporal inside)

The *Chimera* types CT are those built without ``temporal``; T_Chimera
adds ``time``, the temporal types TT = {temporal(T) | T in CT}, and
closes the structured constructors over the whole grammar (so
``set-of(temporal(integer))`` is a T_Chimera type even though
``temporal(set-of(temporal(integer)))`` is not).

Submodules:

* :mod:`repro.types.grammar` -- the type terms;
* :mod:`repro.types.parser` -- concrete syntax (``temporal(set-of(project))``);
* :mod:`repro.types.context` -- the typing context (class extents, ISA);
* :mod:`repro.types.extension` -- the extensions ``[[T]]_t`` (Def. 3.5);
* :mod:`repro.types.deduction` -- the typing rules (Def. 3.6) and type
  inference;
* :mod:`repro.types.subtyping` -- the subtype order ``<=_T`` and lub
  (Def. 6.1);
* :mod:`repro.types.theorems` -- executable statements of Theorems 3.1,
  3.2 and 6.1.
"""

from repro.types.grammar import (
    BOOL,
    BOTTOM,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    BasicType,
    BottomType,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
    is_chimera_type,
    is_temporal_type,
    t_minus,
)
from repro.types.parser import format_type, parse_type
from repro.types.context import (
    DictTypeContext,
    EMPTY_CONTEXT,
    EmptyTypeContext,
    TypeContext,
)
from repro.types.extension import in_extension
from repro.types.deduction import infer_type, is_deducible
from repro.types.subtyping import (
    EMPTY_ISA,
    EmptyIsaOrder,
    IsaOrder,
    is_subtype,
    lub,
)
from repro.types.theorems import (
    completeness_holds,
    extension_inclusion_holds,
    soundness_holds,
)

__all__ = [
    "Type",
    "BasicType",
    "BottomType",
    "ObjectType",
    "SetOf",
    "ListOf",
    "RecordOf",
    "TemporalType",
    "INTEGER",
    "REAL",
    "BOOL",
    "CHARACTER",
    "STRING",
    "TIME",
    "BOTTOM",
    "is_chimera_type",
    "is_temporal_type",
    "t_minus",
    "parse_type",
    "format_type",
    "TypeContext",
    "DictTypeContext",
    "EmptyTypeContext",
    "EMPTY_CONTEXT",
    "in_extension",
    "is_deducible",
    "infer_type",
    "IsaOrder",
    "EmptyIsaOrder",
    "EMPTY_ISA",
    "is_subtype",
    "lub",
    "soundness_holds",
    "completeness_holds",
    "extension_inclusion_holds",
]
