"""Executable statements of the paper's theorems.

The paper proves three metatheoretic results (proofs in the companion
technical report [4], which is not available); here each theorem is an
executable checker, and the test suite quantifies them over randomly
generated values and types with hypothesis.

* **Theorem 3.1 (Soundness).**  If T is deduced for v by the Def. 3.6
  rules, then there exists ``t in TIME`` with ``v in [[T]]_t``.
  :func:`soundness_holds` searches for the witness instant.

* **Theorem 3.2 (Completeness).**  If ``v in [[T]]_t`` then the rules
  deduce ``v : T``.  :func:`completeness_holds` is the implication for
  one (v, T, t) triple.

* **Theorem 6.1.**  ``T1 <=_T T2`` implies ``[[T1]]_t ⊆ [[T2]]_t`` for
  every t.  Extensions are infinite sets, so
  :func:`extension_inclusion_holds` checks the inclusion on a provided
  sample of candidate values (the hypothesis tests feed it values
  generated *from* T1, which is the non-vacuous direction).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import EMPTY_CONTEXT, TypeContext
from repro.types.deduction import is_deducible
from repro.types.extension import in_extension
from repro.types.grammar import Type
from repro.types.subtyping import is_subtype
from repro.values.oid import OID


def witness_instants(
    value: Any,
    t: Type,
    ctx: TypeContext = EMPTY_CONTEXT,
    horizon: int = 64,
) -> Iterable[int]:
    """Candidate witness instants for ``exists t . v in [[T]]_t``.

    Membership only depends on the instant through class extents
    (Definition 3.5), so the candidates are: the instants bounding the
    membership intervals of every oid reachable in *value* for every
    class mentioned in *t*, plus ``0..horizon`` as a fallback for the
    time-independent cases.
    """
    seen: set[int] = set()
    for oid in _reachable_oids(value):
        for class_name in t.mentioned_classes():
            times = ctx.membership_times(class_name, oid)
            for interval in times.intervals:
                seen.add(interval.start)
                end = interval.end
                if isinstance(end, int):
                    seen.add(end)
    for candidate in range(0, horizon + 1):
        seen.add(candidate)
    return sorted(seen)


def soundness_holds(
    value: Any,
    t: Type,
    ctx: TypeContext = EMPTY_CONTEXT,
    now: int | None = None,
    horizon: int = 64,
) -> bool:
    """Theorem 3.1 for one (value, type) pair.

    Precondition: ``v : t`` is deducible (the theorem's hypothesis);
    returns True iff some instant t' has ``v in [[t]]_t'``.
    """
    if not is_deducible(value, t, ctx):
        raise AssertionError(
            "soundness_holds precondition: the value must be deducible "
            f"at the type; {value!r} : {t!r} is not"
        )
    return any(
        in_extension(value, t, instant, ctx, now=now)
        for instant in witness_instants(value, t, ctx, horizon)
    )


def completeness_holds(
    value: Any,
    t: Type,
    at: int,
    ctx: TypeContext = EMPTY_CONTEXT,
    now: int | None = None,
) -> bool:
    """Theorem 3.2 for one (value, type, instant) triple.

    ``v in [[T]]_t  implies  v : T deducible`` -- vacuously true when
    the membership fails.
    """
    if not in_extension(value, t, at, ctx, now=now):
        return True
    return is_deducible(value, t, ctx)


def extension_inclusion_holds(
    t1: Type,
    t2: Type,
    samples: Iterable[Any],
    at: int,
    ctx: TypeContext = EMPTY_CONTEXT,
    now: int | None = None,
) -> bool:
    """Theorem 6.1 for one instant, on a sample of candidate values.

    Precondition: ``t1 <=_T t2``.  Returns True iff every sample in
    ``[[t1]]_at`` is also in ``[[t2]]_at``.
    """
    if not is_subtype(t1, t2, ctx.isa):
        raise AssertionError(
            f"extension_inclusion_holds precondition: {t1!r} <=_T {t2!r}"
        )
    for value in samples:
        if in_extension(value, t1, at, ctx, now=now) and not in_extension(
            value, t2, at, ctx, now=now
        ):
            return False
    return True


def _reachable_oids(value: Any) -> Iterable[OID]:
    """All oids occurring (recursively) inside *value*."""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, OID):
            yield current
        elif isinstance(current, (set, frozenset, list, tuple)):
            stack.extend(current)
        elif isinstance(current, TemporalValue):
            stack.extend(current.values())
        elif hasattr(current, "values") and hasattr(current, "names"):
            stack.extend(current.values())


__all__ = [
    "soundness_holds",
    "completeness_holds",
    "extension_inclusion_holds",
    "witness_instants",
]
