"""Type terms of the T_Chimera grammar (Definitions 3.1-3.4).

All type terms are immutable and hashable, with structural equality.
``is_chimera()`` decides membership in the Chimera subset CT (no
``temporal`` constructor anywhere in the term); Definition 3.3 only
admits ``temporal(T)`` for ``T in CT``, which the
:class:`TemporalType` constructor enforces.

A note on ``time``: the paper extends the basic value types BVT with
``time`` (Section 3.1), and also lists ``time`` as a T_Chimera type of
its own in Definition 3.4.  We model ``time`` as a basic type, so
``temporal(time)`` -- a partial function from instants to instants --
is admitted, consistently with BVT being a subset of CT.

:class:`BottomType` is an implementation device, not part of the paper's
grammar: it is the type of the empty set/list in *type inference* (the
lub-based set and list rules of Definition 3.6 need a least element for
``n = 0``).  It never appears in schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import (
    DuplicateAttributeError,
    NotAChimeraTypeError,
    TypeSyntaxError,
)


class Type:
    """Abstract base of all type terms."""

    __slots__ = ()

    def is_chimera(self) -> bool:
        """True iff the term belongs to CT (no ``temporal`` inside)."""
        raise NotImplementedError

    def children(self) -> tuple["Type", ...]:
        """The immediate component types of the term."""
        return ()

    def subterms(self) -> Iterator["Type"]:
        """All subterms, this term first (pre-order)."""
        yield self
        for child in self.children():
            yield from child.subterms()

    def size(self) -> int:
        """The number of constructors in the term."""
        return sum(1 for _ in self.subterms())

    def depth(self) -> int:
        """The nesting depth of the term (a basic type has depth 1)."""
        kids = self.children()
        return 1 + (max(k.depth() for k in kids) if kids else 0)

    def mentions_object_types(self) -> bool:
        """True iff any subterm is an object type.

        Membership in ``[[T]]_t`` is time-dependent exactly when the
        type mentions object types (class extents vary over time).
        """
        return any(isinstance(t, ObjectType) for t in self.subterms())

    def mentioned_classes(self) -> frozenset[str]:
        """The class identifiers appearing in the term."""
        return frozenset(
            t.class_name for t in self.subterms() if isinstance(t, ObjectType)
        )

    def __str__(self) -> str:
        return repr(self)


#: Names of the basic predefined value types (paper: "containing at
#: least integer, real, bool, character and string", extended with time).
BASIC_TYPE_NAMES = frozenset(
    {"integer", "real", "bool", "character", "string", "time"}
)


@dataclass(frozen=True)
class BasicType(Type):
    """A basic predefined value type ``B in BVT`` (or ``time``)."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in BASIC_TYPE_NAMES:
            raise TypeSyntaxError(
                f"unknown basic type {self.name!r}; "
                f"expected one of {sorted(BASIC_TYPE_NAMES)}"
            )

    def is_chimera(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name


INTEGER = BasicType("integer")
REAL = BasicType("real")
BOOL = BasicType("bool")
CHARACTER = BasicType("character")
STRING = BasicType("string")
TIME = BasicType("time")

#: The basic value types, by name.
BASIC_TYPES: Mapping[str, BasicType] = {
    t.name: t for t in (INTEGER, REAL, BOOL, CHARACTER, STRING, TIME)
}


@dataclass(frozen=True)
class ObjectType(Type):
    """An object type: a class identifier used as a type (Def. 3.1)."""

    class_name: str

    def __post_init__(self) -> None:
        if not self.class_name or not isinstance(self.class_name, str):
            raise TypeSyntaxError("object type needs a non-empty class name")
        if self.class_name in BASIC_TYPE_NAMES:
            raise TypeSyntaxError(
                f"{self.class_name!r} is a basic type name, not a class name"
            )

    def is_chimera(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.class_name


@dataclass(frozen=True)
class SetOf(Type):
    """``set-of(T)``: finite sets of instances of T (Defs. 3.2/3.4)."""

    element: Type

    def is_chimera(self) -> bool:
        return self.element.is_chimera()

    def children(self) -> tuple[Type, ...]:
        return (self.element,)

    def __repr__(self) -> str:
        return f"set-of({self.element!r})"


@dataclass(frozen=True)
class ListOf(Type):
    """``list-of(T)``: finite lists of instances of T (Defs. 3.2/3.4)."""

    element: Type

    def is_chimera(self) -> bool:
        return self.element.is_chimera()

    def children(self) -> tuple[Type, ...]:
        return (self.element,)

    def __repr__(self) -> str:
        return f"list-of({self.element!r})"


class RecordOf(Type):
    """``record-of(a1: T1, ..., an: Tn)`` with distinct names ai."""

    __slots__ = ("_fields",)

    def __init__(
        self,
        fields: Mapping[str, Type] | None = None,
        /,
        **kwargs: Type,
    ) -> None:
        items: list[tuple[str, Type]] = []
        seen: set[str] = set()
        sources: list[Mapping[str, Type]] = []
        if fields is not None:
            sources.append(fields)
        if kwargs:
            sources.append(kwargs)
        for source in sources:
            for name, typ in source.items():
                if name in seen:
                    raise DuplicateAttributeError(
                        f"record type declares attribute {name!r} twice"
                    )
                if not isinstance(typ, Type):
                    raise TypeSyntaxError(
                        f"record field {name!r} must be a Type, got {typ!r}"
                    )
                seen.add(name)
                items.append((name, typ))
        self._fields: dict[str, Type] = dict(items)

    @property
    def fields(self) -> Mapping[str, Type]:
        """Field name -> field type, in declaration order."""
        return dict(self._fields)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._fields)

    def field_type(self, name: str) -> Type:
        try:
            return self._fields[name]
        except KeyError:
            raise TypeSyntaxError(
                f"record type has no attribute {name!r}"
            ) from None

    def is_chimera(self) -> bool:
        return all(t.is_chimera() for t in self._fields.values())

    def children(self) -> tuple[Type, ...]:
        return tuple(self._fields.values())

    def is_empty(self) -> bool:
        """True for the empty record type.

        Used to model the *null type* of footnote 5: ``h_type`` /
        ``s_type`` of a class with no temporal / no static attributes.
        """
        return not self._fields

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordOf):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(frozenset(self._fields.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}: {v!r}" for k, v in self._fields.items())
        return f"record-of({body})"


#: The empty record type, standing in for footnote 5's "null" result of
#: h_type / s_type.
EMPTY_RECORD_TYPE = RecordOf({})


@dataclass(frozen=True)
class TemporalType(Type):
    """``temporal(T)`` for a Chimera type T (Definition 3.3).

    Instances are partial functions from TIME to instances of T.
    Applying ``temporal`` to a non-Chimera type (one already containing
    ``temporal``) raises :class:`NotAChimeraTypeError`.
    """

    argument: Type

    def __post_init__(self) -> None:
        if not isinstance(self.argument, Type):
            raise TypeSyntaxError(
                f"temporal(...) needs a Type, got {self.argument!r}"
            )
        if not self.argument.is_chimera():
            raise NotAChimeraTypeError(
                f"temporal({self.argument!r}) is not a T_Chimera type: "
                "the argument of temporal(...) must be a Chimera type "
                "(Definition 3.3)"
            )

    def is_chimera(self) -> bool:
        return False

    def children(self) -> tuple[Type, ...]:
        return (self.argument,)

    def __repr__(self) -> str:
        return f"temporal({self.argument!r})"


@dataclass(frozen=True)
class BottomType(Type):
    """The least type (inference-only; the type of empty collections)."""

    def is_chimera(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = BottomType()


def is_temporal_type(t: Type) -> bool:
    """True iff *t* is a temporal type (a member of TT)."""
    return isinstance(t, TemporalType)


def t_minus(t: Type) -> Type:
    """The function ``T^-`` of the paper (Table 3).

    Takes ``temporal(T)`` and returns the corresponding static type
    ``T``; e.g. ``T^-(temporal(integer)) = integer``.
    """
    if not isinstance(t, TemporalType):
        raise TypeSyntaxError(
            f"T^- is defined on temporal types only, got {t!r}"
        )
    return t.argument


def is_chimera_type(t: Type) -> bool:
    """True iff *t* belongs to the Chimera subset CT."""
    return t.is_chimera()
