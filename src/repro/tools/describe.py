"""Pretty-printers rendering engine state in the paper's notation.

``describe_class`` prints the 7-tuple of Definition 4.1 exactly as
Example 4.1 lays it out; ``describe_object`` prints the 4-tuple of
Definition 5.1 as Example 5.1 does; ``describe_database`` summarizes
the schema and population.  Used by the examples and handy in a REPL.
"""

from __future__ import annotations

from repro.schema.class_def import ClassSignature
from repro.schema.derived_types import historical_type, static_type
from repro.values.oid import OID
from repro.values.structure import format_value


def describe_class(db, class_name: str) -> str:
    """Definition 4.1's tuple, in Example 4.1's layout."""
    cls: ClassSignature = db.get_class(class_name)
    lines = [
        f"c        = {cls.name}",
        f"type     = {cls.kind.value}",
        f"lifespan = {cls.lifespan}",
        "attr     = {"
        + ", ".join(
            f"({a.name}, {a.type!r})" for a in cls.attributes.values()
        )
        + "}",
        "meth     = {"
        + ", ".join(repr(m) for m in cls.methods.values())
        + "}",
        f"history  = {format_value(cls.history.as_record())}",
        f"mc       = {cls.metaclass_name}",
        f"h_type   = {historical_type(cls)!r}",
        f"s_type   = {static_type(cls)!r}",
    ]
    return "\n".join(lines)


def describe_object(db, oid: OID) -> str:
    """Definition 5.1's tuple, in Example 5.1's layout."""
    obj = db.get_object(oid)
    lines = [
        f"i             = {obj.oid}",
        f"lifespan      = {obj.lifespan}",
        "v             = ("
        + ", ".join(
            f"{name}: {format_value(value)}"
            for name, value in obj.value.items()
        )
        + ")",
        f"class-history = {format_value(obj.class_history)}",
    ]
    if obj.retained:
        lines.append(
            "retained      = ("
            + ", ".join(
                f"{name}: {format_value(value)}"
                for name, value in obj.retained.items()
            )
            + ")"
        )
    return "\n".join(lines)


def describe_database(db) -> str:
    """Schema and population summary."""
    lines = [f"now = {db.now}"]
    lines.append(f"hierarchies: {sorted(db.isa.hierarchies())}")
    for name in sorted(db.class_names()):
        cls = db.get_class(name)
        population = len(cls.history.members_at(db.now))
        instances = len(cls.history.instances_at(db.now))
        parents = sorted(db.isa.parents(name))
        lines.append(
            f"  class {name}"
            + (f" isa {', '.join(parents)}" if parents else "")
            + f": {len(cls.attributes)} attrs, "
            f"{population} members / {instances} instances at now"
            + ("" if cls.is_alive else " (dropped)")
        )
    alive = sum(1 for _ in db.live_objects())
    lines.append(f"objects: {len(db)} total, {alive} alive")
    return "\n".join(lines)
