"""Temporal analytics: derived histories over a live database.

The class-side temporal values (``ext``, ``proper-ext``) and the
object-side attribute histories compose, via ``map`` and ``combine``,
into derived time series without any per-instant iteration:

* :func:`population_history` -- |pi(c, t)| as a function of t;
* :func:`attribute_sum_history` / :func:`attribute_average_history` --
  aggregates of one temporal attribute over the class extent as
  functions of t;
* :func:`value_duration` -- for one object, how long each value of an
  attribute was held (the "for how long" question).

These are the queries a c-attribute like Example 4.1's
``average-participants`` would cache; here they are computed exactly
from the histories.
"""

from __future__ import annotations

from typing import Any

from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null
from repro.values.oid import OID


def population_history(db, class_name: str) -> TemporalValue:
    """``t -> |pi(class_name, t)|`` as a temporal value."""
    cls = db.get_class(class_name)
    return cls.history.ext.map(len)


def instance_population_history(db, class_name: str) -> TemporalValue:
    """``t -> |proper-ext(class_name, t)|``."""
    cls = db.get_class(class_name)
    return cls.history.proper_ext.map(len)


def _member_histories(
    db, class_name: str, attribute: str
) -> list[TemporalValue]:
    """Each ever-member's attribute history restricted to its
    membership span (so migrated-away stretches do not count)."""
    cls = db.get_class(class_name)
    histories = []
    for oid in cls.history.ever_members():
        obj = db.get_object(oid)
        history = obj.temporal_value(attribute)
        if history is None:
            continue
        member_times = cls.history.member_times(oid, db.now)
        histories.append(history.restrict(member_times, db.now))
    return histories


def attribute_sum_history(
    db, class_name: str, attribute: str
) -> TemporalValue:
    """``t -> sum of attribute over the members recording it at t``.

    Null stretches contribute nothing.  Defined wherever at least one
    member records a non-null value.
    """
    total = TemporalValue()
    for history in _member_histories(db, class_name, attribute):
        contribution = history.map(lambda v: 0 if is_null(v) else v)
        if total.is_empty():
            total = contribution
            continue
        overlap = total.combine(contribution, lambda a, b: a + b, now=db.now)
        only_total = total.restrict(
            total.domain(db.now) - contribution.domain(db.now), db.now
        )
        only_new = contribution.restrict(
            contribution.domain(db.now) - total.domain(db.now), db.now
        )
        merged = TemporalValue()
        for part in (overlap, only_total, only_new):
            for interval, value in part.resolved_pairs(db.now):
                merged.put(interval, value)
        total = merged
    return total


def attribute_average_history(
    db, class_name: str, attribute: str
) -> TemporalValue:
    """``t -> average of the attribute over members recording it``."""
    count = TemporalValue()
    for history in _member_histories(db, class_name, attribute):
        ones = history.map(lambda v: 0 if is_null(v) else 1)
        if count.is_empty():
            count = ones
            continue
        overlap = count.combine(ones, lambda a, b: a + b, now=db.now)
        only_count = count.restrict(
            count.domain(db.now) - ones.domain(db.now), db.now
        )
        only_ones = ones.restrict(
            ones.domain(db.now) - count.domain(db.now), db.now
        )
        merged = TemporalValue()
        for part in (overlap, only_count, only_ones):
            for interval, value in part.resolved_pairs(db.now):
                merged.put(interval, value)
        count = merged
    total = attribute_sum_history(db, class_name, attribute)
    # Stretches where every member records null have count 0; the
    # average is null there (carried as the model null).
    from repro.values.null import NULL

    return total.combine(
        count, lambda s, n: (s / n) if n else NULL, now=db.now
    )


def value_duration(
    db, oid: OID, attribute: str
) -> dict[Any, int]:
    """For one object: total instants each value of *attribute* was
    held (open stretches counted up to now)."""
    obj = db.get_object(oid)
    history = obj.temporal_value(attribute)
    if history is None:
        return {}
    totals: dict[Any, int] = {}
    for interval, value in history.resolved_pairs(db.now):
        key = value if not is_null(value) else None
        totals[key] = totals.get(key, 0) + interval.duration()
    return totals
