"""Developer-facing tooling over a live database."""

from repro.tools.describe import describe_class, describe_database, describe_object
from repro.tools.analytics import (
    attribute_average_history,
    attribute_sum_history,
    population_history,
    value_duration,
)

__all__ = [
    "describe_class",
    "describe_object",
    "describe_database",
    "population_history",
    "attribute_sum_history",
    "attribute_average_history",
    "value_duration",
]
