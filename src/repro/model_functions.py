"""The model's function inventory (paper, Table 3).

One callable per function of Table 3, with the paper's exact names and
signatures, operating on a :class:`~repro.database.database.
TemporalDatabase`.  This module is the ground truth for the Table 3
reproduction: ``benchmarks/bench_table3.py`` regenerates the table by
introspecting :data:`TABLE_3`.

====================  =========================================  ==========================================
name                  signature                                  description
====================  =========================================  ==========================================
``t_minus``           TT -> CT                                   static type of a temporal type
``pi``                CI x TIME -> 2^OI                          extent of a class at an instant
``type_``             CI -> T                                    structural type of a class
``h_type``            CI -> T                                    historical type of a class
``s_type``            CI -> T                                    static type of a class
``h_state``           OI x TIME -> V                             historical value of an object
``s_state``           OI -> V                                    static value of an object
``o_lifespan``        OI -> TIME x TIME                          lifespan of an object
``m_lifespan``        OI x CI -> TIME x TIME                     lifespan of an object as member of a class
``ref``               OI x TIME -> 2^OI                          oids referred to at an instant
``snapshot``          OI x TIME -> V                             state of an object at an instant
====================  =========================================  ==========================================

Section 5.1 also introduces ``c_lifespan``, which Table 3 lists as
``m_lifespan``; both names are exported and are the same function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects import state as _state
from repro.objects.references import referenced_oids
from repro.schema.derived_types import (
    historical_type,
    static_type,
    structural_type,
)
from repro.temporal.intervalsets import IntervalSet
from repro.types.grammar import Type, t_minus as _t_minus
from repro.values.oid import OID
from repro.values.records import RecordValue


def t_minus(temporal_type: Type) -> Type:
    """``T^- : TT -> CT`` -- the static type corresponding to a
    temporal type."""
    return _t_minus(temporal_type)


def pi(db, class_name: str, t: int) -> frozenset[OID]:
    """``pi : CI x TIME -> 2^OI`` -- the extent of a class at an
    instant (members and instances alike)."""
    return db.pi(class_name, t)


def type_(db, class_name: str) -> Type:
    """``type : CI -> T`` -- the structural type of a class."""
    return structural_type(db.get_class(class_name))


def h_type(db, class_name: str) -> Type:
    """``h_type : CI -> T`` -- the historical type of a class (the
    empty record type when the class has no temporal attributes,
    footnote 5)."""
    return historical_type(db.get_class(class_name))


def s_type(db, class_name: str) -> Type:
    """``s_type : CI -> T`` -- the static type of a class (the empty
    record type when the class has no static attributes)."""
    return static_type(db.get_class(class_name))


def h_state(db, oid: OID, t: int) -> RecordValue:
    """``h_state : OI x TIME -> V`` -- the historical value of an
    object at an instant."""
    return _state.h_state(db.get_object(oid), t, db.now)


def s_state(db, oid: OID) -> RecordValue:
    """``s_state : OI -> V`` -- the static value of an object."""
    return _state.s_state(db.get_object(oid))


def o_lifespan(db, oid: OID) -> IntervalSet:
    """``o_lifespan : OI -> TIME x TIME`` -- the lifespan of an
    object."""
    return IntervalSet([db.get_object(oid).lifespan], now=db.now)


def m_lifespan(db, oid: OID, class_name: str) -> IntervalSet:
    """``m_lifespan : OI x CI -> TIME x TIME`` -- the lifespan of an
    object as a member of a class (footnote 6: the union of the
    class-history intervals whose class is a subclass of the given
    one)."""
    obj = db.get_object(oid)
    result = IntervalSet.empty()
    for interval, most_specific in obj.class_history.pairs():
        if db.isa.isa_le(most_specific, class_name):
            result = result | IntervalSet([interval], now=db.now)
    return result


#: Section 5.1's name for the same function.
c_lifespan = m_lifespan


def ref(db, oid: OID, t: int) -> frozenset[OID]:
    """``ref : OI x TIME -> 2^OI`` -- the oids the object refers to at
    an instant."""
    return referenced_oids(db.get_object(oid), t, db.now)


def snapshot(db, oid: OID, t: int) -> RecordValue:
    """``snapshot : OI x TIME -> V`` -- the state of the object
    projected at an instant (undefined for past instants when the
    object has static attributes)."""
    return _state.snapshot(db.get_object(oid), t, db.now)


@dataclass(frozen=True)
class FunctionRow:
    """One row of Table 3."""

    name: str
    signature: str
    description: str
    implementation: object


#: The Table 3 inventory, in the paper's order.
TABLE_3: tuple[FunctionRow, ...] = (
    FunctionRow(
        "T^-", "TT -> CT",
        "returns the static type corresponding to a temporal type",
        t_minus,
    ),
    FunctionRow(
        "pi", "CI x TIME -> 2^OI",
        "returns the extent of a class at a given instant",
        pi,
    ),
    FunctionRow(
        "type", "CI -> T",
        "returns the structural type of a class",
        type_,
    ),
    FunctionRow(
        "h_type", "CI -> T",
        "returns the historical type of a class",
        h_type,
    ),
    FunctionRow(
        "s_type", "CI -> T",
        "returns the static type of a class",
        s_type,
    ),
    FunctionRow(
        "h_state", "OI x TIME -> V",
        "returns the historical value of an object",
        h_state,
    ),
    FunctionRow(
        "s_state", "OI -> V",
        "returns the static value of an object",
        s_state,
    ),
    FunctionRow(
        "o_lifespan", "OI -> TIME x TIME",
        "returns the lifespan of an object",
        o_lifespan,
    ),
    FunctionRow(
        "m_lifespan", "OI x CI -> TIME x TIME",
        "returns the lifespan of an object as a member of a given class",
        m_lifespan,
    ),
    FunctionRow(
        "ref", "OI x TIME -> 2^OI",
        "returns the set of oids to which an object refers at a given "
        "instant",
        ref,
    ),
    FunctionRow(
        "snapshot", "OI x TIME -> V",
        "projects the state of an object at a given instant",
        snapshot,
    ),
)

__all__ = [
    "t_minus",
    "pi",
    "type_",
    "h_type",
    "s_type",
    "h_state",
    "s_state",
    "o_lifespan",
    "m_lifespan",
    "c_lifespan",
    "ref",
    "snapshot",
    "FunctionRow",
    "TABLE_3",
]
