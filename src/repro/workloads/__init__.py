"""Seeded synthetic workload generation.

The paper has no evaluation workloads (none existed for temporal OO
models in 1996); the degrees of freedom its definitions introduce --
history length, fraction of temporal vs. static attributes, migration
rate, reference density, hierarchy shape -- are exactly the knobs this
package exposes.  Everything is seeded and deterministic.

* :func:`synthetic_history` -- a single temporal value with a given
  number of pairs (bench E4);
* :class:`WorkloadSpec` / :func:`build_database` -- a full database
  grown by replaying creates/updates/migrations/deletes over the
  clock (benches E6-E8, integration and property tests);
* :func:`standard_schema` -- the employee/manager/project schema used
  across examples and benches;
* :func:`audit_workload` / :func:`audit_queries` -- the bitemporal
  audit family: grow a journal-backed history while recording
  :class:`CommitMark` anchors, then ask "what did we believe at
  transaction time *t* about valid time *t'*?" (bench E19, the
  AS OF property harness).
"""

from repro.workloads.generator import (
    CommitMark,
    WorkloadSpec,
    audit_queries,
    audit_workload,
    build_database,
    standard_schema,
    synthetic_history,
)

__all__ = [
    "CommitMark",
    "WorkloadSpec",
    "audit_queries",
    "audit_workload",
    "build_database",
    "standard_schema",
    "synthetic_history",
]
