"""Workload generator implementation."""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass
from typing import Any

from repro.database.database import TemporalDatabase
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID


def synthetic_history(
    pairs: int,
    seed: int = 0,
    value_pool: int = 1000,
    gap_probability: float = 0.1,
    coalesce: bool = True,
) -> TemporalValue:
    """A temporal value with *pairs* pairs of pseudo-random integers.

    Pair lengths are 1-20 instants; with probability *gap_probability*
    a gap is left between consecutive pairs (the partial function is
    undefined there).  The last pair is closed, so the history is fully
    concrete (no ``now`` dependence) -- what bench E4 wants.
    """
    rng = random.Random(seed)
    history = TemporalValue(coalesce=coalesce)
    t = 0
    for _ in range(pairs):
        length = rng.randint(1, 20)
        history.put(
            Interval(t, t + length - 1), rng.randrange(value_pool)
        )
        t += length
        if rng.random() < gap_probability:
            t += rng.randint(1, 5)
    return history


@dataclass
class WorkloadSpec:
    """Parameters of a generated database workload."""

    #: objects created initially (split across leaf classes).
    n_objects: int = 50
    #: clock ticks to simulate after the initial population.
    n_ticks: int = 100
    #: per-tick probability that a given live object gets one
    #: temporal-attribute update.
    update_rate: float = 0.3
    #: per-tick probability that a given live object gets one
    #: static-attribute update.
    static_update_rate: float = 0.1
    #: per-tick probability that some object migrates.
    migration_rate: float = 0.05
    #: per-tick probability that a new object is created.
    create_rate: float = 0.05
    #: per-tick probability that some (unreferenced) object is deleted.
    delete_rate: float = 0.02
    #: number of extra temporal attributes on the leaf class.
    temporal_attributes: int = 2
    #: number of extra static attributes on the leaf class.
    static_attributes: int = 2
    #: probability that an update to the reference attribute targets
    #: another object (reference density).
    reference_fraction: float = 0.3
    #: number of project objects (cross-hierarchy references: their
    #: lead/participants point into the person hierarchy).
    n_projects: int = 0
    #: per-tick probability that some project's team is reshuffled.
    project_update_rate: float = 0.1
    seed: int = 0


def standard_schema(
    db: TemporalDatabase,
    temporal_attributes: int = 2,
    static_attributes: int = 2,
) -> None:
    """The schema shared by examples and benches.

    ``person`` <- ``employee`` <- ``manager`` (the paper's migration
    example) plus a self-referential ``project`` class, with the
    requested number of extra payload attributes on ``employee``.
    """
    db.define_class("person", attributes=[("name", "string")])
    employee_attrs: list[tuple[str, str]] = [
        ("salary", "temporal(real)"),
        ("dept", "string"),
        ("mentor", "temporal(person)"),
    ]
    for index in range(temporal_attributes):
        employee_attrs.append((f"metric{index}", "temporal(integer)"))
    for index in range(static_attributes):
        employee_attrs.append((f"note{index}", "string"))
    db.define_class("employee", parents=["person"], attributes=employee_attrs)
    db.define_class(
        "manager",
        parents=["employee"],
        attributes=[
            ("dependents", "temporal(set-of(person))"),
            ("officialcar", "string"),
        ],
    )
    db.define_class(
        "project",
        attributes=[
            ("name", "temporal(string)"),
            ("objective", "string"),
            ("lead", "temporal(person)"),
            ("participants", "temporal(set-of(person))"),
        ],
    )


def build_database(
    spec: WorkloadSpec,
    db: TemporalDatabase | None = None,
    bulk: bool = False,
    on_tick=None,
) -> TemporalDatabase:
    """Grow a database by replaying *spec* against the clock.

    Returns the populated database; deterministic in ``spec.seed``.
    All operations go through the public engine API, so the result
    satisfies every invariant by construction (the property tests
    re-verify that with the checkers).

    Pass *db* to grow an existing (e.g. journal-backed) database
    instead of a fresh in-memory one.  With ``bulk=True`` the initial
    population and each tick's mutation wave run inside ``db.batch()``
    -- the bulk-ingestion fast path -- producing a weak-value-equal
    database (Definition 5.10) from the identical operation stream;
    ``bench_ingest`` and the query-oracle equivalence property both
    build on that guarantee.

    *on_tick*, when given, is called with the database right after
    every ``db.tick()`` (i.e. at a clean inter-wave boundary, never
    mid-batch) -- the hook :func:`audit_workload` uses to record
    commit marks without duplicating the growth loop.
    """
    rng = random.Random(spec.seed)
    if db is None:
        db = TemporalDatabase()
    standard_schema(
        db, spec.temporal_attributes, spec.static_attributes
    )
    db.tick()

    def wave():
        return db.batch() if bulk else contextlib.nullcontext()

    employees: list[OID] = []
    managers: set[OID] = set()
    with wave():
        for index in range(spec.n_objects):
            oid = db.create_object(
                "employee",
                {
                    "name": f"emp{index}",
                    "salary": float(1000 + rng.randrange(2000)),
                    "dept": rng.choice("RSTU"),
                },
            )
            employees.append(oid)
        projects: list[OID] = []
        for index in range(spec.n_projects):
            lead = rng.choice(employees) if employees else None
            attributes = {"name": f"proj{index}", "objective": "run"}
            if lead is not None:
                attributes["lead"] = lead
                attributes["participants"] = frozenset(
                    rng.sample(employees, min(3, len(employees)))
                )
            projects.append(db.create_object("project", attributes))

    for _ in range(spec.n_ticks):
        db.tick()
        if on_tick is not None:
            on_tick(db)
        live = [
            oid
            for oid in employees
            if db.get_object(oid).alive_at(db.now, db.now)
        ]
        if not live:
            break
        with wave():
            for oid in live:
                if rng.random() < spec.update_rate:
                    self_class = db.get_object(oid).current_class(db.now)
                    choice = rng.random()
                    if choice < spec.reference_fraction and len(live) > 1:
                        # Identity filter: *oid* is drawn from *live*
                        # itself, and OID.__eq__ on 1000-object pools
                        # dominates the build otherwise.
                        other = rng.choice(
                            [o for o in live if o is not oid]
                        )
                        db.update_attribute(oid, "mentor", other)
                    elif spec.temporal_attributes and choice < 0.7:
                        index = rng.randrange(spec.temporal_attributes)
                        db.update_attribute(
                            oid, f"metric{index}", rng.randrange(100)
                        )
                    else:
                        db.update_attribute(
                            oid,
                            "salary",
                            float(1000 + rng.randrange(3000)),
                        )
                if rng.random() < spec.static_update_rate:
                    if spec.static_attributes:
                        index = rng.randrange(spec.static_attributes)
                        db.update_attribute(
                            oid, f"note{index}", f"n{rng.randrange(50)}"
                        )
                    else:
                        db.update_attribute(
                            oid, "dept", rng.choice("RSTU")
                        )
            if rng.random() < spec.migration_rate and live:
                candidate = rng.choice(live)
                if candidate in managers:
                    db.migrate(candidate, "employee")
                    managers.discard(candidate)
                else:
                    db.migrate(
                        candidate,
                        "manager",
                        {"officialcar": f"car{rng.randrange(10)}"},
                    )
                    managers.add(candidate)
            if rng.random() < spec.create_rate:
                oid = db.create_object(
                    "employee",
                    {
                        "name": f"emp{len(employees)}",
                        "salary": float(1000 + rng.randrange(2000)),
                        "dept": rng.choice("RSTU"),
                    },
                )
                employees.append(oid)
            if projects and rng.random() < spec.project_update_rate and live:
                project = rng.choice(projects)
                db.update_attribute(
                    project,
                    "participants",
                    frozenset(rng.sample(live, min(3, len(live)))),
                )
                db.update_attribute(project, "lead", rng.choice(live))
            if rng.random() < spec.delete_rate and len(live) > 2:
                victim = rng.choice(live)
                try:
                    db.delete_object(victim)
                    managers.discard(victim)
                except Exception:
                    pass  # currently referenced; skip
    db.tick()
    return db


# --------------------------------------------------------------- audit


@dataclass(frozen=True)
class CommitMark:
    """One audit anchor: a committed transaction time and the valid-time
    clock the database showed there.

    ``lsn`` is ``db.journal.last_lsn`` at a clean inter-wave boundary
    (never mid-batch), so ``as_of(db, lsn)`` reconstructs exactly the
    state a contemporaneous reader saw; ``now`` is what ``db.now``
    reported at that moment -- the believed clock every audit query
    quantifies its valid-time scope against.
    """

    lsn: int
    now: int


def audit_workload(
    db: TemporalDatabase,
    spec: WorkloadSpec | None = None,
) -> list[CommitMark]:
    """Grow a *journal-backed* database while recording commit marks.

    The audit question -- "what did we believe at transaction time
    *t* about valid time *t'*?" -- needs two ingredients: a history
    whose beliefs actually changed over transaction time (updates,
    migrations, deletions rewriting the past's future), and a list of
    transaction times worth asking about.  This runs the standard
    mixed workload through :func:`build_database` and snapshots
    ``(last_lsn, now)`` at every tick boundary, plus a final mark at
    the head.  Deterministic in ``spec.seed``.
    """
    if getattr(db, "journal", None) is None:
        raise ValueError("audit_workload needs a journal-backed database")
    spec = spec or WorkloadSpec()
    marks: list[CommitMark] = []

    def mark(current: TemporalDatabase) -> None:
        marks.append(CommitMark(current.journal.last_lsn, current.now))

    build_database(spec, db=db, on_tick=mark)
    mark(db)  # the head, after build_database's closing tick
    return marks


def audit_queries(
    marks: list[CommitMark],
    n_queries: int = 20,
    seed: int = 0,
    salary_span: int = 3000,
) -> list[str]:
    """*n_queries* audit query strings over the marked history.

    Each query pins one recorded transaction time with ``as of`` and
    quantifies over valid time with one of the five scopes (current,
    ``at``, ``sometime``/``always``, ``sometime in``/``always in``),
    drawing the instants from inside that mark's believed clock --
    so every query is answerable by the reconstruction it targets.
    Deterministic in *seed*; the E19 bench and the audit chapter of
    the tutorial replay exactly these.
    """
    if not marks:
        raise ValueError("audit_queries needs at least one commit mark")
    rng = random.Random(seed)
    queries: list[str] = []
    for _ in range(n_queries):
        mark = rng.choice(marks)
        threshold = rng.randrange(salary_span)
        pred = f"salary > {threshold}"
        horizon = max(mark.now, 1)
        kind = rng.randrange(5)
        if kind == 0:
            scope = ""  # current scope: [now, now] of the believed clock
        elif kind == 1:
            scope = f" at {rng.randrange(horizon)}"
        elif kind == 2:
            scope = rng.choice((" sometime", " always"))
        else:
            start = rng.randrange(horizon)
            end = rng.randrange(start, horizon)
            word = "sometime" if kind == 3 else "always"
            scope = f" {word} in [{start}, {end}]"
        queries.append(
            f"select employee where {pred}{scope} as of {mark.lsn}"
        )
    return queries
