"""Exception hierarchy for the T_Chimera reproduction.

Every error raised by the library derives from :class:`TChimeraError`, so
applications can catch the whole family with a single ``except`` clause.
The sub-hierarchy mirrors the layers of the model: time-domain errors,
type errors, schema errors, object errors, and database/integrity errors.
"""

from __future__ import annotations


class TChimeraError(Exception):
    """Base class of every exception raised by the library."""


# ---------------------------------------------------------------------------
# Time domain
# ---------------------------------------------------------------------------

class TimeError(TChimeraError):
    """Base class for errors in the temporal substrate."""


class InvalidInstantError(TimeError):
    """An instant is not a natural number (TIME is isomorphic to N)."""


class InvalidIntervalError(TimeError):
    """An interval's endpoints are malformed (e.g. start after end)."""


class UnresolvedNowError(TimeError):
    """An operation needed a concrete value for ``now`` but none was given."""


class UndefinedAtError(TimeError):
    """A partial function from TIME was applied outside its domain."""


class OverlappingHistoryError(TimeError):
    """Two pairs of a temporal value would overlap in time."""


class ClockError(TimeError):
    """The database clock was misused (e.g. moved backwards)."""


# ---------------------------------------------------------------------------
# Types and values
# ---------------------------------------------------------------------------

class TypeSystemError(TChimeraError):
    """Base class for errors in the type system."""


class TypeSyntaxError(TypeSystemError):
    """A type expression could not be parsed or constructed (Defs. 3.2-3.4)."""


class NotAChimeraTypeError(TypeSyntaxError):
    """``temporal(T)`` was applied to a type outside CT (Def. 3.3)."""


class TypeCheckError(TypeSystemError):
    """A value is not a legal value of the required type (Def. 3.5/3.6)."""


class NoLubError(TypeSystemError):
    """A set of types has no least upper bound in the type poset."""


class UnknownClassError(TypeSystemError):
    """A class identifier was used that is not defined in the schema."""


class ValueError_(TChimeraError):
    """Base class for malformed values (named to avoid shadowing builtins)."""


# ---------------------------------------------------------------------------
# Schema (classes, metaclasses, methods)
# ---------------------------------------------------------------------------

class SchemaError(TChimeraError):
    """Base class for schema-level errors."""


class DuplicateClassError(SchemaError):
    """A class identifier was defined twice."""


class DuplicateAttributeError(SchemaError):
    """A record type or class declares the same attribute name twice."""


class UnknownAttributeError(SchemaError):
    """An attribute name is not part of a class or record."""


class UnknownMethodError(SchemaError):
    """A method name is not part of a class signature."""


class RefinementError(SchemaError):
    """A subclass violates Rule 6.1 (attribute domain refinement) or the
    covariance/contravariance conditions on method redefinition."""


class IsaCycleError(SchemaError):
    """The declared ISA relationships contain a cycle (must be a DAG)."""


# ---------------------------------------------------------------------------
# Objects
# ---------------------------------------------------------------------------

class ObjectError(TChimeraError):
    """Base class for object-level errors."""


class UnknownObjectError(ObjectError):
    """An oid does not denote any object in the database."""


class DuplicateOidError(ObjectError):
    """Two distinct objects share an oid (violates OID-UNIQUENESS)."""


class LifespanError(ObjectError):
    """An operation fell outside an object's or class's lifespan."""


class MigrationError(ObjectError):
    """An illegal object migration (e.g. across disjoint hierarchies,
    violating Invariant 6.2)."""


class SnapshotUndefinedError(ObjectError):
    """``snapshot(i, t)`` is undefined: the object has static attributes
    and t is not the current time (paper Section 5.3)."""


# ---------------------------------------------------------------------------
# Database / integrity
# ---------------------------------------------------------------------------

class DatabaseError(TChimeraError):
    """Base class for engine-level errors."""


class IntegrityError(DatabaseError):
    """An invariant of the model was violated (Invariants 5.1, 5.2, 6.1,
    6.2, Definitions 5.5 and 5.6)."""


class ReferentialIntegrityError(IntegrityError):
    """An object refers to an oid outside the database (Def. 5.6, cond. 2)."""


class ConsistencyError(IntegrityError):
    """An object is not a consistent instance of its class (Def. 5.5)."""


class TransactionError(DatabaseError):
    """A transactional update batch could not be applied."""


class PersistenceError(DatabaseError):
    """The store could not be serialized or deserialized."""


class SegmentError(PersistenceError):
    """A cold-segment file is missing, truncated, or corrupt (bad
    magic, CRC mismatch, dangling footer entry)."""


class JournalError(DatabaseError):
    """The write-ahead journal was misused (nested transaction markers,
    checkpoint during an open transaction, appends after a crash)."""


class BatchError(DatabaseError):
    """A bulk batch (``db.batch()``) was misused: nested batches, or a
    transaction opened inside an active batch."""


class RecoveryError(DatabaseError):
    """Crash recovery could not reconstruct a database (unrecoverable
    checkpoint loss, or a journal record that fails to replay)."""


class BitemporalError(DatabaseError):
    """A transaction-time (``AS OF``) read was refused or impossible:
    no journal to order transaction time, a future LSN, a read inside
    an open transaction or batch (uncommitted frames have no assigned
    transaction time), or a target older than the retained history."""


class ReplicationError(DatabaseError):
    """The WAL-shipping subsystem could not make progress (exhausted
    delivery retries, a restore target outside the retained history,
    or a replica that cannot be brought back)."""


class ReplicaWriteError(ReplicationError):
    """A write operation was attempted on a read-only replica."""


class ServerError(DatabaseError):
    """The serving layer refused or failed a request (admission control,
    draining, a malformed session command, or a dead server process).

    ``kind`` names the originating exception class when the error was
    relayed over the wire; ``retry`` is true exactly when the request
    was refused rather than failed, so a client may safely resend it.
    """

    def __init__(
        self, message: str, kind: str = "ServerError", retry: bool = False
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry = retry


class SubscriberError(DatabaseError):
    """One or more event subscribers raised.  Raised *after* every
    subscriber has been notified, so a failing observer can no longer
    leave the remaining observers half-notified.

    ``failures`` holds ``(callback, exception)`` pairs in notification
    order.
    """

    def __init__(self, event, failures) -> None:
        self.event = event
        self.failures = list(failures)
        names = ", ".join(
            getattr(cb, "__qualname__", repr(cb)) for cb, _ in self.failures
        )
        super().__init__(
            f"{len(self.failures)} subscriber(s) raised while handling "
            f"{event!r}: {names}"
        )


# ---------------------------------------------------------------------------
# Query / constraints / triggers (future-work extensions, paper Section 7)
# ---------------------------------------------------------------------------

class QueryError(TChimeraError):
    """Base class for query-language errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""


class QueryTypeError(QueryError):
    """The query is ill-typed under the Def. 3.6 rules."""


class ConstraintError(TChimeraError):
    """A declared temporal integrity constraint is violated."""


class TriggerError(TChimeraError):
    """A trigger definition or execution error (e.g. non-terminating set)."""
