"""The in-transit seam between the primary's journal and a replica.

Shipped frames travel as the exact bytes the primary wrote -- length
prefix, CRC-32 and payload (:class:`repro.database.wal.Frame.raw`) --
so end-to-end integrity costs nothing extra: whatever mangles a frame
between the two processes (a torn pipe write, a flipped bit on the
wire, a silently dropped packet) is caught by the same frame scanner
that guards the on-disk journal.

:class:`Channel` is the in-process transport: it concatenates frame
bytes for one delivery and gives deterministic fault injection a place
to land (the ``ship.*`` points of
:data:`repro.faults.replica.REPLICA_CRASH_POINTS`).  A file- or
socket-backed transport substitutes here without touching the shipper
or the replica: both sides speak "a byte run of whole frames".
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.database.wal import Frame
from repro.faults.fs import FaultInjector


class Channel:
    """One primary->replica link, with injectable transit faults.

    ``transit`` serializes a delivery.  When the injector fires a
    ``ship`` fault at the Nth frame ever carried by this link:

    * ``torn``    -- the delivery is cut mid-frame (everything from the
      torn frame on is lost);
    * ``bitflip`` -- one bit of the frame flips; the CRC catches it at
      the replica and parsing stops there;
    * ``drop``    -- the frame silently vanishes, leaving an LSN gap
      that the replica's contiguity check refuses to apply past.

    All three manifest to the shipper as a *short delivery* (the
    replica applied less than was sent), which triggers a bounded
    re-ship from the replica's applied LSN.
    """

    def __init__(
        self,
        injector: FaultInjector | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.injector = injector or FaultInjector(None)
        self.rng = rng or random.Random(0)

    def transit(self, frames: Iterable[Frame]) -> bytes:
        delivery = bytearray()
        for frame in frames:
            mode = self.injector.check("ship")
            raw = frame.raw
            if mode == "torn":
                delivery += raw[
                    : self.rng.randint(0, max(len(raw) - 1, 0))
                ]
                break
            if mode == "bitflip":
                corrupted = bytearray(raw)
                index = self.rng.randrange(len(corrupted))
                corrupted[index] ^= 1 << self.rng.randrange(8)
                delivery += corrupted
                continue
            if mode == "drop":
                continue
            delivery += raw
        return bytes(delivery)
