"""WAL shipping: crash-tolerant read replicas + point-in-time recovery.

The replication layer turns the single-node durability stack (journal +
checkpoints, :mod:`repro.database.wal` / :mod:`repro.database.recovery`)
into a primary/replica system without adding a second log format:

* :class:`LogShipper` tails the primary's journal through the same
  filesystem seam the primary writes through and ships **committed
  frames verbatim** (header + CRC + payload) to attached replicas,
  with checkpoint-fetch catch-up and bounded retries on corrupt or
  short deliveries;
* :class:`Replica` archives shipped frames into a durability directory
  of its own, applies them in transaction-atomic units through the
  stock replay path, serves read-only queries at its applied LSN, and
  restarts from its own archive after a crash;
* :func:`restore_to` is point-in-time recovery over any durability
  directory -- primary or replica -- by LSN (journal position) or by
  tick (the paper's temporal axis);
* :class:`Channel` is the in-process transport seam where the
  ``ship.*`` faults of :mod:`repro.faults.replica` land.

Observability: ``wal.shipped_frames``, ``replication.lag_lsn``,
``replication.catchups``, ``replication.frame_errors``,
``replication.records_applied`` and ``replication.restarts`` metrics,
plus ``replication.ship`` / ``replication.apply`` /
``replication.catchup`` spans -- all exported through ``repro stats``.
"""

from repro.replication.pitr import restore_to
from repro.replication.replica import ReadOnlyDatabase, Replica
from repro.replication.shipper import DEFAULT_RETRIES, LogShipper
from repro.replication.transport import Channel

__all__ = [
    "Channel",
    "DEFAULT_RETRIES",
    "LogShipper",
    "ReadOnlyDatabase",
    "Replica",
    "restore_to",
]
