"""A crash-tolerant, read-only replica fed by shipped WAL frames.

A replica owns a normal durability directory of its own -- an *archive*
journal (``journal.wal``) of every shipped frame plus the checkpoint it
last bootstrapped from -- deliberately in the exact on-disk format the
primary uses.  That buys two properties for free:

* **restartability** -- after a crash, the stock recovery path
  (:func:`repro.database.recovery.recover`) rebuilds the replica from
  its own directory, no replication-specific recovery code;
* **deep point-in-time restore** -- the archive is never truncated by
  the *primary's* checkpoints, so :func:`repro.replication.restore_to`
  against a replica directory reaches further back than the primary's
  own retention window.

Frames are archived *before* they are applied (the replica's own little
WAL rule), and a delivery is applied in transaction-atomic *units*: a
standalone autocommit frame, or a whole ``begin``..``commit`` group.  A
delivery that tears mid-unit leaves the open suffix unapplied and
unarchived; the shipper re-ships it from the replica's applied LSN.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Iterator

from repro import perf
from repro.obs import spans as obs
from repro.database.recovery import (
    JOURNAL_NAME,
    _committed_end,
    apply_record,
    recover,
)
from repro.database.wal import (
    CHECKPOINT_FORMAT,
    MAGIC,
    Frame,
    checkpoint_name,
    checkpoint_lsn,
    iter_frame_bytes,
    list_checkpoints,
)
from repro.errors import ReplicaWriteError, ReplicationError
from repro.faults.fs import FaultInjector, SimulatedCrash, SimulatedFS, RealFS
from repro.replication.transport import Channel

_APPLIED = perf.metric("replication.records_applied")
_RESTARTS = perf.metric("replication.restarts")

#: TemporalDatabase methods a read-only replica must refuse.
_MUTATORS = frozenset(
    {
        "attach_journal",
        "checkpoint",
        "tick",
        "batch",
        "define_class",
        "add_attribute",
        "remove_attribute",
        "drop_class",
        "create_object",
        "update_attribute",
        "correct_attribute",
        "migrate",
        "delete_object",
        "call_c_method",
        "subscribe",
        "unsubscribe",
    }
)


class ReadOnlyDatabase:
    """A write-blocking proxy over a replica's database.

    Attribute access passes through to the underlying
    :class:`~repro.database.database.TemporalDatabase` except for the
    mutating surface, which raises :class:`ReplicaWriteError` -- writes
    belong on the primary, and a replica that accepted one would
    silently diverge from the shipped log.
    """

    __slots__ = ("_db",)

    def __init__(self, db: Any) -> None:
        object.__setattr__(self, "_db", db)

    def __getattr__(self, name: str) -> Any:
        if name in _MUTATORS:
            raise ReplicaWriteError(
                f"{name}() is a write operation; replicas are read-only "
                "(apply it on the primary and let the shipper replicate it)"
            )
        return getattr(object.__getattribute__(self, "_db"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise ReplicaWriteError("replicas are read-only")

    def __len__(self) -> int:
        return len(object.__getattribute__(self, "_db"))

    def __contains__(self, oid: Any) -> bool:
        return oid in object.__getattribute__(self, "_db")

    def __repr__(self) -> str:
        return f"ReadOnlyDatabase({object.__getattribute__(self, '_db')!r})"


class Replica:
    """One read replica: an applied database plus its archive directory.

    The replica is passive -- :class:`~repro.replication.LogShipper`
    drives it by calling :meth:`install_checkpoint` (catch-up
    bootstrap), :meth:`deliver` (tail replay) and :meth:`restart`
    (crash recovery).  Readers use :attr:`db` and :meth:`query`.

    ``injector`` carries an optional
    :class:`~repro.faults.replica.ReplicaCrashPlan`; ``ship.*`` faults
    land in the transit :class:`~repro.replication.transport.Channel`,
    ``apply.kill``/``fetch.kill`` kill this replica mid-operation
    (database gone; a :class:`~repro.faults.fs.SimulatedFS` directory
    collapses to its durable view on restart).
    """

    def __init__(
        self,
        name: str,
        directory: str | os.PathLike[str] | None = None,
        fs: Any = None,
        injector: FaultInjector | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self.directory = str(directory or f"/replica/{name}")
        self.fs = fs if fs is not None else RealFS()
        self.injector = injector or FaultInjector(None)
        self.rng = rng or random.Random(0)
        self.channel = Channel(injector=self.injector, rng=self.rng)
        self.dead = False
        self.applied_lsn = 0
        self._db: Any = None
        if isinstance(self.fs, RealFS):
            os.makedirs(self.directory, exist_ok=True)
        self._journal_path = os.path.join(self.directory, JOURNAL_NAME)
        if self.fs.exists(self._journal_path) or list_checkpoints(
            self.fs, self.directory
        ):
            self._recover_local()
        else:
            self._init_archive()

    # -- read surface ----------------------------------------------------------

    @property
    def db(self) -> ReadOnlyDatabase:
        """The replica's database at :attr:`applied_lsn`, read-only."""
        self._require_alive()
        if self._db is None:
            raise ReplicationError(
                f"replica {self.name!r} has not bootstrapped yet"
            )
        return ReadOnlyDatabase(self._db)

    @property
    def applied_tick(self) -> int | None:
        """The replica clock (None before bootstrap)."""
        return self._db.now if self._db is not None else None

    def query(self, text: str) -> Any:
        """Evaluate one query string against the applied state."""
        from repro.query import evaluate, parse_query

        self._require_alive()
        if self._db is None:
            raise ReplicationError(
                f"replica {self.name!r} has not bootstrapped yet"
            )
        return evaluate(self._db, parse_query(text))

    # -- shipping protocol -----------------------------------------------------

    def deliver(self, frames: list[Frame]) -> int:
        """Receive one delivery; returns the number of frames applied.

        The delivery crosses the transit channel (where ``ship.*``
        faults corrupt it), is re-validated frame by frame, checked for
        LSN contiguity from ``applied_lsn + 1``, split into
        transaction-atomic units, archived and applied.  Corruption is
        never fatal here: the valid applied prefix is reported back and
        the shipper re-ships the rest.
        """
        self._require_alive()
        data = self.channel.transit(frames)
        good: list[Frame] = []
        expected = self.applied_lsn + 1
        for frame in _safe_frames(data):
            if frame.lsn != expected:
                break  # gap (dropped frame) or stale overlap
            good.append(frame)
            expected += 1
        units = _split_units(good)
        applied = 0
        with obs.span(
            "replication.apply", replica=self.name, frames=len(good)
        ):
            for unit in units:
                self._apply_unit(unit)
                applied += len(unit)
        return applied

    def _apply_unit(self, unit: list[Frame]) -> None:
        # Archive first, apply second: a kill mid-apply loses only the
        # in-memory database, and restart recovers the full unit from
        # the archive (it is committed data -- the primary only ships
        # committed frames).
        self.fs.append(
            self._journal_path, b"".join(frame.raw for frame in unit)
        )
        self.fs.fsync(self._journal_path)
        for frame in unit:
            if frame.is_marker:
                self.applied_lsn = frame.lsn
                continue
            if self.injector.check("apply") == "kill":
                self._die(f"apply.kill at lsn {frame.lsn}")
            self._db = apply_record(self._db, frame.record)
            self.applied_lsn = frame.lsn
            _APPLIED.add()

    def install_checkpoint(
        self, data: bytes, segments: dict[str, bytes] | None = None
    ) -> int:
        """Bootstrap (or fast-forward) from a primary checkpoint.

        Mirrors the primary's atomic checkpoint protocol: segment files
        first (a checkpoint must never become newest while its cold
        segments are missing), then temp file, fsync, rename, fsync
        the directory, drop older checkpoints, reset the archive to
        empty.  Returns the checkpoint's LSN, which becomes
        :attr:`applied_lsn`.
        """
        self._require_alive()
        try:
            doc = json.loads(data.decode("utf-8"))
            if doc.get("format") != CHECKPOINT_FORMAT:
                raise ValueError(
                    f"unsupported checkpoint format {doc.get('format')!r}"
                )
            lsn = int(doc["lsn"])
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise ReplicationError(
                f"replica {self.name!r}: unusable checkpoint: {exc}"
            ) from exc
        from repro.database import segments as seg
        from repro.database.persistence import database_from_json

        seg_name = doc.get("segments")
        if seg_name and not (segments and seg_name in segments):
            raise ReplicationError(
                f"replica {self.name!r}: checkpoint references segment "
                f"{seg_name!r} but the fetch shipped no bytes for it"
            )
        if seg_name:
            seg_final = os.path.join(self.directory, seg_name)
            seg_tmp = seg_final + ".tmp"
            self.fs.write(seg_tmp, segments[seg_name])
            self.fs.fsync(seg_tmp)
            self.fs.replace(seg_tmp, seg_final)
            self.fs.fsync_dir(self.directory)
        final = os.path.join(self.directory, checkpoint_name(lsn))
        tmp = final + ".tmp"
        self.fs.write(tmp, data)
        if self.injector.check("fetch") == "kill":
            # At worst a temp file survives; its name never parses as a
            # checkpoint, so the next bootstrap ignores it.  (A shipped
            # segment file may also survive, but recovery only trusts
            # segments a durable checkpoint references.)
            self._die("fetch.kill during checkpoint install")
        self.fs.fsync(tmp)
        self.fs.replace(tmp, final)
        self.fs.fsync_dir(self.directory)
        for name in list_checkpoints(self.fs, self.directory):
            if checkpoint_lsn(name) < lsn:
                self.fs.remove(os.path.join(self.directory, name))
        for name in seg.list_segments(self.fs, self.directory):
            if name != seg_name:
                self.fs.remove(os.path.join(self.directory, name))
        self.fs.fsync_dir(self.directory)
        self._init_archive()
        store = seg.SegmentStore(self.fs, self.directory)
        self._db = database_from_json(
            json.dumps(doc["database"]), segments=store
        )
        self._db.segment_values = seg.count_segment_values(self._db)
        self.applied_lsn = lsn
        return lsn

    # -- crash / restart -------------------------------------------------------

    def restart(self) -> None:
        """Bring a dead (or live) replica back from its own directory.

        After a simulated kill the directory collapses to its durable
        view (:meth:`~repro.faults.fs.SimulatedFS.crash_view`), then
        the stock recovery path rebuilds the database.  A replica whose
        directory holds nothing usable resets to empty and re-enters
        the shipper's checkpoint-fetch catch-up on the next sync.
        """
        _RESTARTS.add()
        if self.dead and isinstance(self.fs, SimulatedFS):
            self.fs = self.fs.crash_view(self.rng)
        self.dead = False
        self._db = None
        self.applied_lsn = 0
        if not self.fs.exists(self._journal_path) and not list_checkpoints(
            self.fs, self.directory
        ):
            self._init_archive()
            return
        self._recover_local()

    def _recover_local(self) -> None:
        db, report = recover(self.directory, fs=self.fs)
        if db is None:
            # Nothing usable (e.g. a fetch crash tore the very first
            # bootstrap): reset and let the shipper re-bootstrap.
            self._reset_local()
            return
        self._db = db
        self.applied_lsn = report.last_lsn
        # Repair the archive tail so future appends extend the valid
        # committed prefix: a torn last unit (crash_view kept a partial
        # unsynced suffix) or a unit cut inside a begin..commit group
        # must be physically dropped, exactly as open_database does for
        # the primary's journal.
        if report.uncommitted_txn:
            self.fs.truncate(
                self._journal_path,
                _committed_end(self.fs, self._journal_path),
            )
            self.fs.fsync(self._journal_path)
        elif report.salvaged_tail:
            self.fs.truncate(self._journal_path, report.valid_end)
            self.fs.fsync(self._journal_path)
        if not self.fs.exists(self._journal_path):
            self._init_archive()

    def _reset_local(self) -> None:
        from repro.database import segments as seg

        for name in list_checkpoints(self.fs, self.directory):
            self.fs.remove(os.path.join(self.directory, name))
        for name in seg.list_segments(self.fs, self.directory):
            self.fs.remove(os.path.join(self.directory, name))
        self._init_archive()
        self._db = None
        self.applied_lsn = 0

    def _init_archive(self) -> None:
        self.fs.write(self._journal_path, MAGIC)
        self.fs.fsync(self._journal_path)

    def _die(self, reason: str) -> None:
        self.dead = True
        self._db = None
        raise SimulatedCrash(f"replica {self.name!r}: {reason}")

    def _require_alive(self) -> None:
        if self.dead:
            raise ReplicationError(
                f"replica {self.name!r} is dead (restart() it first)"
            )

    def __repr__(self) -> str:
        state = "dead" if self.dead else f"lsn={self.applied_lsn}"
        return f"Replica({self.name!r}, {state})"


def _safe_frames(data: bytes) -> Iterator[Frame]:
    """Valid-prefix frames of a delivery (corruption ends iteration)."""
    gen = iter_frame_bytes(data)
    while True:
        try:
            yield next(gen)
        except StopIteration:
            return


def _split_units(frames: list[Frame]) -> list[list[Frame]]:
    """Group a contiguous frame run into transaction-atomic units.

    A unit is one autocommit frame or a whole ``begin``..``commit``
    group.  A trailing open group (the delivery tore mid-transaction)
    is withheld -- the shipper re-ships it whole.
    """
    units: list[list[Frame]] = []
    current: list[Frame] = []
    in_txn = False
    for frame in frames:
        current.append(frame)
        if frame.kind == "begin":
            in_txn = True
        elif frame.kind == "commit":
            in_txn = False
        if not in_txn:
            units.append(current)
            current = []
    return units
