"""Point-in-time recovery: rebuild a database as of an LSN or a tick.

:func:`restore_to` replays a durability directory -- the primary's, or
(usually better, because its archive journal is never truncated by the
primary's checkpoints) a replica's -- and stops at a target:

* ``lsn=N``  -- the state right after the record with LSN ``N`` (the
  physical axis: "undo everything after journal position N");
* ``tick=T`` -- the state while the database clock read ``T`` (the
  temporal axis of the paper's model: "the database as the application
  saw it at time T").

Restore never mutates the source directory; it returns a detached
database (no journal attached) plus the
:class:`~repro.database.recovery.RecoveryReport` describing the
replay.  A target outside the retained history -- older than every
surviving checkpoint and the journal's genesis, or malformed -- raises
:class:`~repro.errors.ReplicationError` with the recovery errors
inlined.
"""

from __future__ import annotations

import os
from typing import Any

from repro.database.recovery import RecoveryReport, recover
from repro.errors import ReplicationError


def restore_to(
    directory: str | os.PathLike[str],
    lsn: int | None = None,
    tick: int | None = None,
    fs: Any = None,
) -> tuple[Any, RecoveryReport]:
    """Rebuild *directory*'s database as of ``lsn`` or ``tick``.

    Exactly one of the two targets must be given.  Returns
    ``(db, report)``; the database is detached (read it, query it,
    checkpoint it elsewhere -- it does not journal).
    """
    if (lsn is None) == (tick is None):
        raise ReplicationError(
            "restore_to needs exactly one target: lsn=... or tick=..."
        )
    if lsn is not None and lsn < 0:
        raise ReplicationError(f"restore target lsn {lsn} is negative")
    if tick is not None and tick < 0:
        raise ReplicationError(f"restore target tick {tick} is negative")
    db, report = recover(directory, fs=fs, stop_lsn=lsn, stop_tick=tick)
    if db is None:
        target = f"lsn {lsn}" if lsn is not None else f"tick {tick}"
        raise ReplicationError(
            f"cannot restore {str(directory)!r} to {target}: "
            + "; ".join(report.errors)
        )
    return db, report
