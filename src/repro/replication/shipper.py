"""The log shipper: tails the primary's journal, feeds the replicas.

Shipping policy -- **committed frames only**.  The primary's journal is
not append-only at the tail: :meth:`Journal.abort` physically truncates
an open transaction (and reuses its LSNs), and a checkpoint truncates
the whole journal.  Shipping an uncommitted frame could therefore ship
an LSN that later names a *different* record.  The shipper withholds a
trailing open transaction until its ``commit`` marker lands; everything
it ships is immutable history.

Catch-up protocol, per replica and per :meth:`LogShipper.sync`:

1. a dead replica is restarted (it recovers from its own archive);
2. a replica behind the journal's retention floor -- the primary
   checkpointed and truncated past it -- or a blank replica is
   bootstrapped from the newest primary checkpoint
   (:meth:`Replica.install_checkpoint`);
3. the committed tail from ``applied_lsn + 1`` is shipped in one
   delivery.

A delivery that applies short (torn/bit-flipped/dropped frame in
transit, or a replica killed mid-apply) is retried from the replica's
applied LSN, up to ``REPRO_SHIP_RETRIES`` times with an injectable
backoff; exhaustion raises :class:`ReplicationError` rather than
looping forever against a link that eats every frame.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Callable

from repro import perf
from repro.obs import spans as obs
from repro.database.recovery import JOURNAL_NAME
from repro.database.wal import (
    MAGIC,
    Frame,
    checkpoint_lsn,
    iter_frame_bytes,
    list_checkpoints,
)
from repro.errors import ReplicationError
from repro.faults.fs import RealFS, SimulatedCrash
from repro.replication.replica import Replica

_SHIPPED = perf.metric("wal.shipped_frames")
_LAG = perf.metric("replication.lag_lsn")
_CATCHUPS = perf.metric("replication.catchups")
_FRAME_ERRORS = perf.metric("replication.frame_errors")

#: Delivery retries per sync before giving up (overridable per shipper).
DEFAULT_RETRIES = 4


def _default_backoff(attempt: int) -> None:
    # Tiny and linear: in-process links recover on the next poll, and
    # fault-injection trials must not stall the test suite.
    time.sleep(0.001 * attempt)


class LogShipper:
    """Ships the committed journal tail of one primary to N replicas.

    The shipper polls (``sync``/``sync_all``) rather than subscribing:
    it reads the journal file through the same ``fs`` seam the primary
    writes through, so it works identically against a live process, a
    crashed one, or a :class:`~repro.faults.fs.SimulatedFS`.  Parsed
    committed frames are cached incrementally -- each poll re-parses
    only the bytes past the last committed boundary, and a shrunken
    file (checkpoint truncation) resets the cache.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        fs: Any = None,
        retries: int | None = None,
        backoff: Callable[[int], None] | None = None,
    ) -> None:
        self.directory = str(directory)
        self.fs = fs if fs is not None else RealFS()
        self.journal_path = os.path.join(self.directory, JOURNAL_NAME)
        if retries is None:
            retries = int(
                os.environ.get("REPRO_SHIP_RETRIES", DEFAULT_RETRIES)
            )
        self.retries = retries
        self.backoff = backoff or _default_backoff
        self.replicas: list[Replica] = []
        # Incremental scan state: committed frames currently in the
        # journal file, the byte offset of the last committed boundary
        # (always outside any transaction, so a resumed parse starts
        # clean), and a running CRC of the bytes up to that boundary.
        # The CRC is the truncation detector: a checkpoint truncates
        # the journal, and if it regrows past the old boundary before
        # the next poll, size alone cannot tell -- but the prefix bytes
        # can.
        self._committed: list[Frame] = []
        self._scan_end = len(MAGIC)
        self._scan_crc = zlib.crc32(MAGIC)

    def attach(self, replica: Replica) -> Replica:
        """Register a replica; it is synced on the next ``sync_all``."""
        self.replicas.append(replica)
        return replica

    # -- journal tailing -------------------------------------------------------

    def committed_frames(self) -> list[Frame]:
        """The journal's committed frames, oldest first (cached scan)."""
        try:
            data = self.fs.read(self.journal_path)
        except (FileNotFoundError, KeyError):
            data = b""
        if (
            len(data) < self._scan_end
            or not data.startswith(MAGIC)
            or zlib.crc32(data[: self._scan_end]) != self._scan_crc
        ):
            # The journal no longer carries our committed prefix: a
            # checkpoint truncated it (possibly regrowing past the old
            # boundary between polls, which is why size alone is not
            # trusted).  Drop the cache; replicas behind the new
            # retention floor catch up via checkpoint fetch.
            self._committed = []
            self._scan_end = len(MAGIC)
            self._scan_crc = zlib.crc32(MAGIC)
            if not data.startswith(MAGIC):
                return list(self._committed)
        staged: list[Frame] | None = None
        boundary = self._scan_end
        for frame in _valid_frames(data, self._scan_end):
            kind = frame.kind
            if kind == "begin":
                staged = [frame]
            elif kind == "commit":
                if staged is not None:
                    staged.append(frame)
                    self._committed.extend(staged)
                    staged = None
                else:
                    self._committed.append(frame)
                boundary = frame.end
            elif staged is not None:
                staged.append(frame)
            else:
                self._committed.append(frame)
                boundary = frame.end
        if boundary > self._scan_end:
            self._scan_crc = zlib.crc32(
                data[self._scan_end : boundary], self._scan_crc
            )
            self._scan_end = boundary
        return list(self._committed)

    def newest_checkpoint(self) -> tuple[bytes, int] | None:
        """Raw bytes + LSN of the primary's newest checkpoint, if any."""
        names = list_checkpoints(self.fs, self.directory)
        if not names:
            return None
        name = names[-1]
        return (
            self.fs.read(os.path.join(self.directory, name)),
            checkpoint_lsn(name),
        )

    def committed_lsn(self) -> int:
        """The LSN of the newest committed, shippable record."""
        frames = self.committed_frames()
        if frames:
            return frames[-1].lsn
        newest = self.newest_checkpoint()
        return newest[1] if newest else 0

    def lag(self, replica: Replica) -> int:
        """How many LSNs *replica* trails the committed head."""
        return max(0, self.committed_lsn() - replica.applied_lsn)

    # -- shipping --------------------------------------------------------------

    def sync(self, replica: Replica) -> int:
        """Drive one replica to the committed head; returns frames applied.

        Restarts it if dead, bootstraps it from a checkpoint when blank
        or beyond the retention floor, then ships the committed tail,
        retrying short deliveries up to ``retries`` times.
        """
        with obs.span("replication.ship", replica=replica.name) as sp:
            shipped = self._sync(replica)
            sp.annotate(frames=shipped)
        self._update_lag()
        return shipped

    def _sync(self, replica: Replica) -> int:
        shipped = 0
        for attempt in range(self.retries + 1):
            if attempt:
                self.backoff(attempt)
            try:
                if replica.dead:
                    replica.restart()
                frames = self.committed_frames()
                floor = frames[0].lsn if frames else None
                need = replica.applied_lsn + 1
                if floor is None or floor > need:
                    # The journal does not reach back to the replica's
                    # position -- it is blank, or the primary has
                    # checkpoint-truncated past it.  Bootstrap from the
                    # newest checkpoint (a no-op when that checkpoint
                    # is not ahead of the replica).
                    self._fetch(replica)
                    need = replica.applied_lsn + 1
                pending = [f for f in frames if f.lsn >= need]
                if not pending:
                    return shipped
                applied = replica.deliver(pending)
                shipped += applied
                _SHIPPED.add(applied)
                if replica.applied_lsn >= pending[-1].lsn:
                    return shipped
                # Short delivery: a frame was torn, bit-flipped or
                # dropped in transit.  Count it and re-ship the rest.
                _FRAME_ERRORS.add()
            except SimulatedCrash:
                # The replica died mid-apply or mid-fetch; the next
                # attempt restarts it from its own archive.
                continue
        raise ReplicationError(
            f"replica {replica.name!r} failed to reach lsn "
            f"{self.committed_lsn()} after {self.retries} retries "
            f"(stuck at {replica.applied_lsn})"
        )

    def sync_all(self) -> dict[str, int]:
        """Sync every attached replica; name -> frames applied."""
        return {
            replica.name: self.sync(replica) for replica in self.replicas
        }

    def _fetch(self, replica: Replica) -> None:
        """Checkpoint-bootstrap one replica, if a newer checkpoint exists."""
        newest = self.newest_checkpoint()
        if newest is None:
            return  # genesis ships as ordinary frames
        data, lsn = newest
        if lsn <= replica.applied_lsn:
            return
        segments = self._segment_payload(data)
        with obs.span(
            "replication.catchup",
            replica=replica.name,
            lsn=lsn,
            segments=len(segments),
        ):
            _CATCHUPS.add()
            replica.install_checkpoint(data, segments=segments)

    def _segment_payload(self, data: bytes) -> dict[str, bytes]:
        """Cold-segment files a checkpoint references, name -> raw bytes.

        Segment files are checkpoint artifacts: a checkpoint whose
        temporal values carry ``cold`` references is unusable without
        them, so a catch-up fetch ships them alongside the checkpoint
        document itself.
        """
        try:
            name = json.loads(data.decode("utf-8")).get("segments")
        except (ValueError, UnicodeDecodeError):
            return {}
        if not name:
            return {}
        try:
            raw = self.fs.read(os.path.join(self.directory, name))
        except FileNotFoundError:
            return {}
        return {name: raw}

    def _update_lag(self) -> None:
        head = self.committed_lsn()
        _LAG.count = max(
            (
                max(0, head - replica.applied_lsn)
                for replica in self.replicas
            ),
            default=0,
        )


def _valid_frames(data: bytes, offset: int):
    """Valid-prefix frames of *data* starting at *offset*."""
    gen = iter_frame_bytes(data, offset)
    while True:
        try:
            yield next(gen)
        except StopIteration:
            return
