"""A temporal integrity constraint language (paper Section 7).

The paper's future work calls for "a temporal integrity constraint
language [that] would allow, among other things, to express constraints
based on past histories of objects".  This package supplies one: a
small vocabulary of declarative constraint forms over attribute
histories, compiled to checkers that run on demand or continuously
(subscribed to database events).

Constraint forms
----------------
* :class:`NonDecreasing` / :class:`NonIncreasing` -- the history of a
  temporal attribute is monotone (e.g. a salary never decreases);
* :class:`AlwaysMeaningful` -- the attribute is defined at every
  instant of the object's membership in the class;
* :class:`ValueBounds` -- every recorded value lies in ``[lo, hi]``;
* :class:`MaxDuration` -- no value is held longer than ``limit``
  consecutive instants (optionally one specific value);
* :class:`Immutable` -- the history is a constant function (the
  paper's immutable-attribute semantics as a checkable constraint);
* :class:`HistoryPredicate` -- an arbitrary query-language predicate
  quantified ``always`` or ``sometime`` over the object's history.

Enforcement: :meth:`ConstraintSet.enforce` subscribes to the database;
after any operation that violates a constraint it raises
:class:`ConstraintError`.  Operations are already applied when events
fire, so transactional enforcement wraps the operation in a
:class:`~repro.database.transactions.Transaction` -- see
``examples/temporal_constraints.py``.
"""

from repro.constraints.constraints import (
    AlwaysMeaningful,
    AttributeOrder,
    Constraint,
    ConstraintSet,
    HistoryPredicate,
    Immutable,
    MaxDuration,
    NonDecreasing,
    NonIncreasing,
    ValueBounds,
)

__all__ = [
    "Constraint",
    "ConstraintSet",
    "NonDecreasing",
    "NonIncreasing",
    "AlwaysMeaningful",
    "AttributeOrder",
    "ValueBounds",
    "MaxDuration",
    "Immutable",
    "HistoryPredicate",
]
