"""Constraint forms and the constraint set.

Every constraint targets one class and checks one object at a time;
objects are checked when they are (or ever were) members of the class,
against the portion of history recorded while a member -- constraints,
like consistency (Definition 5.5), are class-relative.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConstraintError, UnknownObjectError
from repro.database.events import Event, EventKind
from repro.obs import spans as obs
from repro.objects.object import TemporalObject
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null


class Constraint:
    """Abstract base: one named, class-scoped temporal constraint."""

    def __init__(self, class_name: str, name: str | None = None) -> None:
        self.class_name = class_name
        self.name = name or type(self).__name__

    def violations(self, db, obj: TemporalObject) -> list[str]:
        """Human-readable violations of this constraint by *obj*."""
        raise NotImplementedError

    def _membership(self, db, obj: TemporalObject) -> IntervalSet:
        return db.membership_times(self.class_name, obj.oid)

    def _history(
        self, db, obj: TemporalObject, attribute: str
    ) -> TemporalValue | None:
        """The attribute history restricted to the membership span."""
        history = obj.temporal_value(attribute)
        if history is None:
            return None
        return history.restrict(self._membership(db, obj), db.now)

    def __repr__(self) -> str:
        return f"{self.name}({self.class_name!r})"


class _AttributeConstraint(Constraint):
    def __init__(
        self, class_name: str, attribute: str, name: str | None = None
    ) -> None:
        super().__init__(class_name, name)
        self.attribute = attribute

    def __repr__(self) -> str:
        return f"{self.name}({self.class_name!r}.{self.attribute})"


class NonDecreasing(_AttributeConstraint):
    """Recorded values of the attribute never decrease over time."""

    def violations(self, db, obj: TemporalObject) -> list[str]:
        return _monotone_violations(
            self._history(db, obj, self.attribute),
            self.attribute,
            lambda prev, curr: prev <= curr,
            "decreased",
        )


class NonIncreasing(_AttributeConstraint):
    """Recorded values of the attribute never increase over time."""

    def violations(self, db, obj: TemporalObject) -> list[str]:
        return _monotone_violations(
            self._history(db, obj, self.attribute),
            self.attribute,
            lambda prev, curr: prev >= curr,
            "increased",
        )


def _monotone_violations(
    history: TemporalValue | None,
    attribute: str,
    ok: Callable[[Any, Any], bool],
    verb: str,
) -> list[str]:
    if history is None:
        return []
    problems = []
    previous = None
    for interval, value in history.pairs():
        if is_null(value):
            continue
        if previous is not None and not ok(previous, value):
            problems.append(
                f"{attribute} {verb} from {previous!r} to {value!r} at "
                f"{interval.start}"
            )
        previous = value
    return problems


class AlwaysMeaningful(_AttributeConstraint):
    """The attribute is meaningful (Definition 5.2) at every instant
    of the object's membership in the class."""

    def violations(self, db, obj: TemporalObject) -> list[str]:
        membership = self._membership(db, obj)
        if membership.is_empty:
            return []
        history = obj.temporal_value(self.attribute)
        domain = (
            history.domain(db.now) if history is not None
            else IntervalSet.empty()
        )
        missing = membership - domain
        if missing.is_empty:
            return []
        return [
            f"{self.attribute} is not meaningful during {missing} of the "
            f"membership in {self.class_name!r}"
        ]


class ValueBounds(_AttributeConstraint):
    """Every recorded (non-null) value lies within ``[lo, hi]``."""

    def __init__(
        self,
        class_name: str,
        attribute: str,
        lo: Any = None,
        hi: Any = None,
    ) -> None:
        super().__init__(class_name, attribute)
        self.lo = lo
        self.hi = hi

    def violations(self, db, obj: TemporalObject) -> list[str]:
        history = self._history(db, obj, self.attribute)
        problems = []
        values: list[tuple[Any, Any]] = []
        if history is not None:
            values = [(i.start, v) for i, v in history.pairs()]
        else:
            current = obj.value.get(self.attribute)
            if current is not None and not isinstance(
                current, TemporalValue
            ):
                values = [(db.now, current)]
        for at, value in values:
            if is_null(value):
                continue
            if self.lo is not None and value < self.lo:
                problems.append(
                    f"{self.attribute} = {value!r} below {self.lo!r} at "
                    f"{at}"
                )
            if self.hi is not None and value > self.hi:
                problems.append(
                    f"{self.attribute} = {value!r} above {self.hi!r} at "
                    f"{at}"
                )
        return problems


class MaxDuration(_AttributeConstraint):
    """No value (optionally: one specific value) may be held for more
    than *limit* consecutive instants."""

    def __init__(
        self,
        class_name: str,
        attribute: str,
        limit: int,
        value: Any = None,
    ) -> None:
        super().__init__(class_name, attribute)
        self.limit = limit
        self.value = value

    def violations(self, db, obj: TemporalObject) -> list[str]:
        history = self._history(db, obj, self.attribute)
        if history is None:
            return []
        problems = []
        for interval, value in history.resolved_pairs(db.now):
            if self.value is not None and value != self.value:
                continue
            held = interval.duration()
            if held > self.limit:
                problems.append(
                    f"{self.attribute} held {value!r} for {held} > "
                    f"{self.limit} instants ({interval})"
                )
        return problems


class Immutable(_AttributeConstraint):
    """The attribute's history is a constant function (the immutable
    attribute notion, as a checkable constraint)."""

    def violations(self, db, obj: TemporalObject) -> list[str]:
        history = self._history(db, obj, self.attribute)
        if history is None or history.is_constant():
            return []
        return [
            f"{self.attribute} changed value over time: "
            f"{list(history.values())!r}"
        ]


class AttributeOrder(Constraint):
    """Two temporal attributes stand in a pointwise order wherever both
    are defined: ``fn(a(t), b(t))`` must hold (default: ``a <= b``).

    Example: a task's ``spent`` budget never exceeds its ``allocated``
    budget, at any instant -- a genuinely temporal constraint comparing
    two histories, evaluated with the pairwise temporal join
    (:meth:`TemporalValue.combine`), never per instant.
    """

    def __init__(
        self,
        class_name: str,
        lower: str,
        upper: str,
        ok: Callable[[Any, Any], bool] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(class_name, name)
        self.lower = lower
        self.upper = upper
        self.ok = ok if ok is not None else (lambda a, b: a <= b)

    def violations(self, db, obj: TemporalObject) -> list[str]:
        a = self._history(db, obj, self.lower)
        b = self._history(db, obj, self.upper)
        if a is None or b is None:
            return []

        def check(x: Any, y: Any) -> bool:
            if is_null(x) or is_null(y):
                return True
            return self.ok(x, y)

        joined = a.combine(b, check, now=db.now)
        bad = joined.when(lambda holds: holds is False, now=db.now)
        if bad.is_empty:
            return []
        return [
            f"order between {self.lower!r} and {self.upper!r} violated "
            f"during {bad}"
        ]

    def __repr__(self) -> str:
        return (
            f"{self.name}({self.class_name!r}.{self.lower} vs "
            f"{self.upper})"
        )


class HistoryPredicate(Constraint):
    """A query-language predicate quantified over the history.

    ``mode="always"``: the predicate holds at every instant of
    membership; ``mode="sometime"``: at some instant.
    """

    def __init__(
        self,
        class_name: str,
        predicate,
        mode: str = "always",
        name: str | None = None,
    ) -> None:
        super().__init__(class_name, name)
        if mode not in ("always", "sometime"):
            raise ConstraintError(
                f"HistoryPredicate mode must be always/sometime, got "
                f"{mode!r}"
            )
        self.predicate = predicate
        self.mode = mode

    def violations(self, db, obj: TemporalObject) -> list[str]:
        from repro.query.evaluator import evaluate_when

        membership = self._membership(db, obj)
        if membership.is_empty:
            return []
        holds = evaluate_when(db, obj, self.predicate, db.now)
        if self.mode == "always":
            missing = membership - holds
            if missing.is_empty:
                return []
            return [
                f"predicate fails during {missing} of the membership in "
                f"{self.class_name!r}"
            ]
        if (holds & membership).is_empty:
            return [
                f"predicate never holds during the membership in "
                f"{self.class_name!r}"
            ]
        return []


class ConstraintSet:
    """A named collection of constraints with batch and continuous
    checking."""

    def __init__(self) -> None:
        self._constraints: list[Constraint] = []
        self._enforcing: list = []

    def add(self, constraint: Constraint) -> "ConstraintSet":
        self._constraints.append(constraint)
        return self

    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def check_object(self, db, obj: TemporalObject) -> list[str]:
        """All violations by one object (over classes it ever joined)."""
        problems = []
        for constraint in self._constraints:
            if db.membership_times(
                constraint.class_name, obj.oid
            ).is_empty:
                continue
            for problem in constraint.violations(db, obj):
                problems.append(f"{constraint!r}: {obj.oid!r}: {problem}")
        return problems

    def check(self, db) -> list[str]:
        """All violations across the whole database."""
        with obs.span(
            "constraint.check",
            constraints=len(self._constraints),
            scope="database",
        ):
            problems = []
            for obj in db.objects():
                problems.extend(self.check_object(db, obj))
            return problems

    # -- continuous enforcement -------------------------------------------------

    def enforce(self, db) -> None:
        """Subscribe to *db*: any operation leaving a violated
        constraint raises :class:`ConstraintError` (after the fact --
        wrap operations in a Transaction for atomic rejection)."""

        def observer(database, event: Event) -> None:
            # A BATCH event coalesces many operations; check each
            # distinct surviving object once against the post-batch
            # state (enforcement is after-the-fact either way).
            with obs.span(
                "constraint.check", event=event.kind.name, scope="event"
            ):
                seen = set()
                problems = []
                for contained in event.events:
                    if contained.kind is EventKind.DELETE:
                        continue
                    if contained.oid in seen:
                        continue
                    seen.add(contained.oid)
                    try:
                        obj = database.get_object(contained.oid)
                    except UnknownObjectError:
                        continue  # deleted later in the same batch
                    problems.extend(self.check_object(database, obj))
                if problems:
                    raise ConstraintError("; ".join(problems))

        self._enforcing.append((db, observer))
        db.subscribe(observer)

    def unenforce(self, db) -> None:
        for pair in list(self._enforcing):
            if pair[0] is db:
                db.unsubscribe(pair[1])
                self._enforcing.remove(pair)
