"""Fluent query construction.

.. code-block:: python

    from repro.query import select, attr

    q = select("project").where(attr("name") == "IDEA").at(50)
    oids = q.run(db)

    holds = when(db, oid, attr("participants").contains(i2))
"""

from __future__ import annotations

from typing import Any

from repro.query.ast import Expr, Query, TemporalScope, _lift
from repro.temporal.intervalsets import IntervalSet
from repro.values.oid import OID


class QueryBuilder:
    """Accumulates the pieces of a :class:`Query`."""

    def __init__(self, class_name: str) -> None:
        self._class_name = class_name
        self._predicate: Expr | None = None
        self._scope = TemporalScope.NOW
        self._at: int | None = None
        self._interval: tuple[int, int] | None = None

    def where(self, predicate: Expr | Any) -> "QueryBuilder":
        """Add (conjoin) a predicate."""
        lifted = _lift(predicate)
        if self._predicate is None:
            self._predicate = lifted
        else:
            from repro.query.ast import And

            self._predicate = And(self._predicate, lifted)
        return self

    def at(self, t: int) -> "QueryBuilder":
        """Evaluate at one past (or present) instant."""
        self._scope = TemporalScope.AT
        self._at = t
        return self

    def now(self) -> "QueryBuilder":
        self._scope = TemporalScope.NOW
        return self

    def sometime(self) -> "QueryBuilder":
        """The predicate must hold at some instant of membership."""
        self._scope = TemporalScope.SOMETIME
        return self

    def always(self) -> "QueryBuilder":
        """The predicate must hold at every instant of membership."""
        self._scope = TemporalScope.ALWAYS
        return self

    def sometime_in(self, start: int, end: int) -> "QueryBuilder":
        self._scope = TemporalScope.SOMETIME_IN
        self._interval = (start, end)
        return self

    def always_in(self, start: int, end: int) -> "QueryBuilder":
        self._scope = TemporalScope.ALWAYS_IN
        self._interval = (start, end)
        return self

    def build(self) -> Query:
        return Query(
            self._class_name,
            self._predicate,
            self._scope,
            self._at,
            self._interval,
        )

    def run(self, db) -> list[OID]:
        """Build and evaluate against *db*."""
        from repro.query.evaluator import evaluate

        return evaluate(db, self.build())

    def run_records(self, db) -> list[tuple[OID, Any]]:
        """Like :meth:`run`, but pairs each hit with its snapshot.

        The snapshot is taken at the query's anchor instant (the ``at``
        instant for AT scope, otherwise ``now``); objects whose
        snapshot is undefined there (static attributes at a past
        instant) are paired with ``None``.
        """
        from repro.errors import SnapshotUndefinedError
        from repro.objects.state import snapshot
        from repro.query.ast import TemporalScope
        from repro.query.evaluator import evaluate

        query = self.build()
        at = (
            query.at
            if query.scope is TemporalScope.AT and query.at is not None
            else db.now
        )
        results = []
        for oid in evaluate(db, query):
            try:
                record = snapshot(db.get_object(oid), at, db.now)
            except SnapshotUndefinedError:
                record = None
            results.append((oid, record))
        return results


def select(class_name: str) -> QueryBuilder:
    """Start a query over the extent of *class_name*."""
    return QueryBuilder(class_name)


def when(db, oid: OID, predicate: Expr) -> IntervalSet:
    """The instants at which *predicate* holds of the object *oid*."""
    from repro.query.evaluator import evaluate_when

    return evaluate_when(db, db.get_object(oid), predicate, db.now)
