"""Static typing of query predicates.

Each expression is assigned a type relative to the queried class's
structural type; the rules reuse the model's type machinery:

* ``Attr(a)`` has the class's declared domain, with ``temporal(T)``
  collapsing to ``T`` (the evaluator reads the function at one
  instant -- the coercion view of Section 6.1);
* ``HistoryOf(a)`` has the declared ``temporal(T)`` itself and is only
  legal on temporal attributes;
* ``Const(v)`` is typed by the inference of Definition 3.6;
* comparisons require the two sides to be related by ``<=_T`` in one
  direction or the other (or both numeric); order comparisons require
  a totally ordered basic type;
* ``In``/``Contains`` require a collection whose element type relates
  to the item type;
* ``SizeOf`` requires a collection and has type integer;
* the connectives require (and have) type bool.

A violation raises :class:`QueryTypeError` with the offending subterm.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryTypeError, TypeCheckError
from repro.query.ast import (
    And,
    Attr,
    Path,
    Compare,
    CompareOp,
    Const,
    Contains,
    Expr,
    HistoryOf,
    In,
    Not,
    Or,
    Query,
    SizeOf,
)
from repro.schema.class_def import ClassSignature
from repro.types.context import TypeContext
from repro.types.deduction import infer_type
from repro.types.grammar import (
    BOOL,
    BOTTOM,
    INTEGER,
    BasicType,
    BottomType,
    ListOf,
    SetOf,
    TemporalType,
    Type,
)
from repro.types.subtyping import is_subtype
from repro.values.null import is_null

_ORDERED = {"integer", "real", "string", "character", "time"}


def type_check(query: Query, cls: ClassSignature, ctx: TypeContext) -> None:
    """Check the query's predicate against class *cls*; raise
    :class:`QueryTypeError` on the first violation."""
    if query.predicate is None:
        return
    result = _type_of(query.predicate, cls, ctx)
    if result != BOOL:
        raise QueryTypeError(
            f"query predicate has type {result!r}, expected bool"
        )


def _type_of(expr: Expr, cls: ClassSignature, ctx: TypeContext) -> Type:
    if isinstance(expr, Attr):
        attribute = _attribute(cls, expr.name)
        declared = attribute.type
        if isinstance(declared, TemporalType):
            return declared.argument
        return declared
    if isinstance(expr, Path):
        return _type_of_path(expr, cls, ctx)
    if isinstance(expr, HistoryOf):
        attribute = _attribute(cls, expr.name)
        if not isinstance(attribute.type, TemporalType):
            raise QueryTypeError(
                f"history of {expr.name!r}: the attribute is not "
                "temporal"
            )
        return attribute.type
    if isinstance(expr, Const):
        if is_null(expr.value):
            return BOTTOM
        try:
            return infer_type(expr.value, ctx)
        except TypeCheckError as exc:
            raise QueryTypeError(
                f"literal {expr.value!r} is not a T_Chimera value: {exc}"
            ) from exc
    if isinstance(expr, Compare):
        left = _type_of(expr.left, cls, ctx)
        right = _type_of(expr.right, cls, ctx)
        if not _comparable(left, right, ctx):
            raise QueryTypeError(
                f"cannot compare {left!r} with {right!r}"
            )
        if expr.op not in (CompareOp.EQ, CompareOp.NE):
            if not (_is_ordered(left) or isinstance(left, BottomType)) or \
               not (_is_ordered(right) or isinstance(right, BottomType)):
                raise QueryTypeError(
                    f"order comparison needs an ordered basic type, got "
                    f"{left!r} {expr.op.value} {right!r}"
                )
        return BOOL
    if isinstance(expr, (And, Or)):
        for side in (expr.left, expr.right):
            side_type = _type_of(side, cls, ctx)
            if side_type != BOOL:
                raise QueryTypeError(
                    f"connective operand has type {side_type!r}, "
                    "expected bool"
                )
        return BOOL
    if isinstance(expr, Not):
        operand = _type_of(expr.operand, cls, ctx)
        if operand != BOOL:
            raise QueryTypeError(
                f"'not' operand has type {operand!r}, expected bool"
            )
        return BOOL
    if isinstance(expr, (In, Contains)):
        item = expr.item if isinstance(expr, In) else expr.item
        collection = (
            expr.collection if isinstance(expr, In) else expr.collection
        )
        collection_type = _type_of(collection, cls, ctx)
        if not isinstance(collection_type, (SetOf, ListOf)):
            raise QueryTypeError(
                f"membership needs a set/list, got {collection_type!r}"
            )
        item_type = _type_of(item, cls, ctx)
        if not _comparable(item_type, collection_type.element, ctx):
            raise QueryTypeError(
                f"membership item {item_type!r} is unrelated to element "
                f"type {collection_type.element!r}"
            )
        return BOOL
    if isinstance(expr, SizeOf):
        operand = _type_of(expr.operand, cls, ctx)
        if not isinstance(operand, (SetOf, ListOf)):
            raise QueryTypeError(
                f"size() needs a set/list, got {operand!r}"
            )
        return INTEGER
    raise QueryTypeError(f"unknown expression {expr!r}")


def _type_of_path(expr: Path, cls: ClassSignature, ctx: TypeContext) -> Type:
    """Resolve a dereferencing path through the schema.

    Intermediate steps must have an object-type domain (possibly
    wrapped in temporal); the path's type is the final attribute's
    domain, de-temporalized."""
    get_class = getattr(ctx, "get_class", None)
    if not callable(get_class):
        raise QueryTypeError(
            "path expressions need a database context (class lookups)"
        )
    current = cls
    for index, step in enumerate(expr.steps):
        attribute = _attribute(current, step)
        declared = attribute.type
        if isinstance(declared, TemporalType):
            declared = declared.argument
        if index == len(expr.steps) - 1:
            return declared
        from repro.types.grammar import ObjectType as _ObjectType

        if not isinstance(declared, _ObjectType):
            raise QueryTypeError(
                f"path step {step!r} has domain {declared!r}, not an "
                "object type; cannot dereference further"
            )
        current = get_class(declared.class_name)
    raise AssertionError("unreachable")


def _attribute(cls: ClassSignature, name: str):
    if name not in cls.attributes:
        raise QueryTypeError(
            f"class {cls.name!r} has no attribute {name!r}"
        )
    return cls.attributes[name]


def _comparable(a: Type, b: Type, ctx: TypeContext) -> bool:
    if isinstance(a, BottomType) or isinstance(b, BottomType):
        return True
    if is_subtype(a, b, ctx.isa) or is_subtype(b, a, ctx.isa):
        return True
    if not (isinstance(a, BasicType) and isinstance(b, BasicType)):
        return False
    # integer and real are numerically comparable; character values
    # are strings of length one, so the two textual types compare.
    numeric = {"integer", "real"}
    textual = {"string", "character"}
    return (a.name in numeric and b.name in numeric) or (
        a.name in textual and b.name in textual
    )


def _is_ordered(t: Type) -> bool:
    return isinstance(t, BasicType) and t.name in _ORDERED
