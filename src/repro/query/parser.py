"""Concrete syntax for queries.

Grammar (case-insensitive keywords)::

    query     ::=  'select' IDENT [ 'where' pred ] [ scope ]
                   [ 'as' 'of' INT ]
    scope     ::=  'at' INT
                |  'sometime' [ 'in' interval ]
                |  'always'   [ 'in' interval ]
    interval  ::=  '[' INT ',' INT ']'
    pred      ::=  conj { 'or' conj }
    conj      ::=  atom { 'and' atom }
    atom      ::=  'not' atom
                |  '(' pred ')'
                |  operand cmp operand
                |  operand 'in' operand
                |  operand 'contains' operand
    operand   ::=  'size' '(' operand ')'
                |  'history' '(' IDENT ')'
                |  IDENT                -- an attribute
                |  literal
    literal   ::=  INT | FLOAT | STRING | 'true' | 'false' | 'null'
                |  'oid' '(' INT [ ',' IDENT ] ')'
    cmp       ::=  '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='

Examples::

    select project where name = 'IDEA' at 50
    select employee where salary >= 2000.0 sometime
    select manager where size(dependents) > 2 always in [10, 40]
    select employee where salary > 2000 at 5 as of 17

``as of INT`` pins the *transaction-time* dimension (the commit LSN
whose believed state the query reads); the scope clause keeps
quantifying over valid time.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    And,
    Attr,
    Path,
    Compare,
    CompareOp,
    Const,
    Contains,
    Expr,
    HistoryOf,
    In,
    Not,
    Or,
    Query,
    SizeOf,
    TemporalScope,
)
from repro.values.null import NULL
from repro.values.oid import OID

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<float>\d+\.\d+)
      | (?P<int>\d+)
      | (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<op><>|!=|<=|>=|=|<|>)
      | (?P<punct>[()\[\],.])
      | (?P<ident>[A-Za-z_][A-Za-z0-9_-]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "where", "at", "sometime", "always", "in", "and", "or",
    "not", "contains", "size", "history", "true", "false", "null", "oid",
    "as", "of",
}


def _tokenize(text: str) -> list[tuple[str, Any]]:
    tokens: list[tuple[str, Any]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise QuerySyntaxError(
                    f"unexpected character {text[pos]!r} at {pos} in "
                    f"{text!r}"
                )
            break
        if match.group("float") is not None:
            tokens.append(("number", float(match.group("float"))))
        elif match.group("int") is not None:
            tokens.append(("number", int(match.group("int"))))
        elif match.group("string") is not None:
            raw = match.group("string")[1:-1]
            tokens.append(("string", raw.replace("\\'", "'")))
        elif match.group("op") is not None:
            tokens.append(("op", match.group("op")))
        elif match.group("punct") is not None:
            tokens.append(("punct", match.group("punct")))
        else:
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(("keyword", word.lower()))
            else:
                tokens.append(("ident", word))
        pos = match.end()
    tokens.append(("end", None))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> tuple[str, Any]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, Any]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        kind, value = self._next()
        if kind != "keyword" or value != word:
            raise QuerySyntaxError(
                f"expected {word!r} in {self._text!r}, got {value!r}"
            )

    def _expect_punct(self, mark: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != mark:
            raise QuerySyntaxError(
                f"expected {mark!r} in {self._text!r}, got {value!r}"
            )

    def parse(self) -> Query:
        self._expect_keyword("select")
        kind, class_name = self._next()
        if kind != "ident":
            raise QuerySyntaxError(
                f"expected a class name after 'select', got {class_name!r}"
            )
        predicate: Expr | None = None
        if self._peek() == ("keyword", "where"):
            self._next()
            predicate = self._pred()
        scope, at, interval = self._scope()
        as_of = self._as_of()
        kind, value = self._next()
        if kind != "end":
            raise QuerySyntaxError(
                f"trailing input {value!r} in {self._text!r}"
            )
        return Query(class_name, predicate, scope, at, interval, as_of)

    def _as_of(self) -> int | None:
        if self._peek() != ("keyword", "as"):
            return None
        self._next()
        self._expect_keyword("of")
        kind, lsn = self._next()
        if kind != "number" or not isinstance(lsn, int):
            raise QuerySyntaxError(
                "'as of' needs an integer transaction time (LSN)"
            )
        return lsn

    def _scope(self) -> tuple[TemporalScope, int | None, tuple[int, int] | None]:
        kind, value = self._peek()
        if kind != "keyword":
            return TemporalScope.NOW, None, None
        if value == "at":
            self._next()
            kind, at = self._next()
            if kind != "number" or not isinstance(at, int):
                raise QuerySyntaxError("'at' needs an integer instant")
            return TemporalScope.AT, at, None
        if value in ("sometime", "always"):
            self._next()
            if self._peek() == ("keyword", "in"):
                self._next()
                interval = self._interval()
                scope = (
                    TemporalScope.SOMETIME_IN
                    if value == "sometime"
                    else TemporalScope.ALWAYS_IN
                )
                return scope, None, interval
            scope = (
                TemporalScope.SOMETIME
                if value == "sometime"
                else TemporalScope.ALWAYS
            )
            return scope, None, None
        return TemporalScope.NOW, None, None

    def _interval(self) -> tuple[int, int]:
        self._expect_punct("[")
        kind, start = self._next()
        if kind != "number" or not isinstance(start, int):
            raise QuerySyntaxError("interval start must be an integer")
        self._expect_punct(",")
        kind, end = self._next()
        if kind != "number" or not isinstance(end, int):
            raise QuerySyntaxError("interval end must be an integer")
        self._expect_punct("]")
        return (start, end)

    def _pred(self) -> Expr:
        left = self._conj()
        while self._peek() == ("keyword", "or"):
            self._next()
            left = Or(left, self._conj())
        return left

    def _conj(self) -> Expr:
        left = self._atom()
        while self._peek() == ("keyword", "and"):
            self._next()
            left = And(left, self._atom())
        return left

    def _atom(self) -> Expr:
        kind, value = self._peek()
        if (kind, value) == ("keyword", "not"):
            self._next()
            return Not(self._atom())
        if (kind, value) == ("punct", "("):
            self._next()
            inner = self._pred()
            self._expect_punct(")")
            return inner
        left = self._operand()
        kind, value = self._next()
        if kind == "op":
            op = {
                "=": CompareOp.EQ,
                "<>": CompareOp.NE,
                "!=": CompareOp.NE,
                "<": CompareOp.LT,
                "<=": CompareOp.LE,
                ">": CompareOp.GT,
                ">=": CompareOp.GE,
            }[value]
            return Compare(op, left, self._operand())
        if (kind, value) == ("keyword", "in"):
            return In(left, self._operand())
        if (kind, value) == ("keyword", "contains"):
            return Contains(left, self._operand())
        raise QuerySyntaxError(
            f"expected a comparison in {self._text!r}, got {value!r}"
        )

    def _operand(self) -> Expr:
        kind, value = self._next()
        if kind == "number":
            return Const(value)
        if kind == "string":
            return Const(value)
        if kind == "keyword":
            if value == "true":
                return Const(True)
            if value == "false":
                return Const(False)
            if value == "null":
                return Const(NULL)
            if value == "size":
                self._expect_punct("(")
                inner = self._operand()
                self._expect_punct(")")
                return SizeOf(inner)
            if value == "history":
                self._expect_punct("(")
                kind, name = self._next()
                if kind != "ident":
                    raise QuerySyntaxError(
                        "history(...) needs an attribute name"
                    )
                self._expect_punct(")")
                return HistoryOf(name)
            if value == "oid":
                self._expect_punct("(")
                kind, serial = self._next()
                if kind != "number" or not isinstance(serial, int):
                    raise QuerySyntaxError("oid(...) needs an integer")
                hierarchy = ""
                if self._peek() == ("punct", ","):
                    self._next()
                    kind, hierarchy = self._next()
                    if kind != "ident":
                        raise QuerySyntaxError(
                            "oid(serial, hierarchy) needs an identifier"
                        )
                self._expect_punct(")")
                return Const(OID(serial, hierarchy))
        if kind == "ident":
            steps = [value]
            while self._peek() == ("punct", "."):
                self._next()
                step_kind, step = self._next()
                if step_kind != "ident":
                    raise QuerySyntaxError(
                        f"expected an attribute after '.' in "
                        f"{self._text!r}"
                    )
                steps.append(step)
            if len(steps) > 1:
                return Path(tuple(steps))
            return Attr(value)
        raise QuerySyntaxError(
            f"expected an operand in {self._text!r}, got {value!r}"
        )


def parse_query(text: str) -> Query:
    """Parse the concrete query syntax into a :class:`Query`."""
    if not isinstance(text, str) or not text.strip():
        raise QuerySyntaxError(f"not a query: {text!r}")
    return _Parser(text).parse()
