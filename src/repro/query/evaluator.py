"""Query evaluation.

Semantics.  A query over class c ranges over the oids in ``pi(c, t)``
(members *and* instances, per Definition 3.5's reading of object
types), with the instants t determined by the temporal scope:

* ``NOW`` / ``AT t`` -- the predicate must hold at the single instant;
* ``SOMETIME`` (resp. ``ALWAYS``) -- at some (resp. every) instant of
  the object's membership lifespan ``m_lifespan(i, c)``;
* ``SOMETIME_IN [a,b]`` / ``ALWAYS_IN [a,b]`` -- membership lifespan
  intersected with the interval (an object never a member inside the
  interval satisfies no SOMETIME_IN and every ALWAYS_IN vacuously --
  except it is not returned at all, since the query ranges over
  members).

Attribute access follows the substitutability view of Section 6.1:
``Attr(a)`` on a temporal attribute reads the function at the
evaluation instant; a static attribute contributes its current value
only when the evaluation instant is ``now`` (at past instants a static
attribute is unknown, and any atom over it is false -- the same
information asymmetry as in Definition 5.5's consistency check).

Per-segment evaluation: predicates over piecewise-constant histories
are themselves piecewise constant; :func:`evaluate_when` computes the
exact interval set where the predicate holds by intersecting pair
domains, and the quantified scopes reduce to emptiness/coverage tests
on that set.  Nothing ever iterates per instant.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import QueryError
from repro.objects.object import TemporalObject
from repro.obs import spans as obs
from repro.query.ast import (
    And,
    Attr,
    Path,
    Compare,
    CompareOp,
    Const,
    Contains,
    Expr,
    HistoryOf,
    In,
    Not,
    Or,
    Query,
    SizeOf,
    TemporalScope,
)
from repro.query.typing import type_check
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null
from repro.values.oid import OID
from repro.values.structure import values_equal

_UNDEF = object()  # the "no value here" marker (null-rejecting atoms)


def evaluate(db, query: Query) -> list[OID]:
    """Run *query* against *db*; returns matching oids, sorted.

    A query carrying an ``as_of`` transaction time first resolves the
    believed-at state (:func:`repro.bitemporal.asof.as_of`) -- the live
    database at the head, a reconstructed historical state otherwise --
    and then evaluates against it exactly as any valid-time query
    would: the two time dimensions compose, they do not interact.
    """
    if query.as_of is not None:
        from repro.bitemporal import asof as asof_mod

        db = asof_mod.as_of(db, query.as_of)
    if obs.is_enabled:
        with obs.span(
            "query.evaluate",
            cls=query.class_name,
            scope=query.scope.value,
            **({"as_of": query.as_of} if query.as_of is not None else {}),
        ) as sp:
            results = _evaluate(db, query)
            sp.annotate(results=len(results))
            return results
    return _evaluate(db, query)


def _evaluate(db, query: Query) -> list[OID]:
    cls = db.get_class(query.class_name)
    type_check(query, cls, db)
    if query.predicate is not None:
        # The planner pushes indexable atoms down to posting-list
        # probes and leaves the rest to the scan path below; with the
        # planner ablated (REPRO_NO_PLANNER) it chooses "scan" and
        # delegates straight back to _scan_evaluate.
        from repro.query import planner

        return planner.execute(db, query)[0]
    return _scan_evaluate(db, query)


def _scan_evaluate(db, query: Query) -> list[OID]:
    """The brute-force path: test every oid of the anchor extent."""
    now = db.now
    results: list[OID] = []
    # The anchor extent comes from the cached, index-backed path when
    # the database provides one (plain TypeContexts fall back to pi).
    extent_at = getattr(db, "anchor_extent", db.pi)
    for oid in sorted(extent_at(query.class_name, _anchor_instant(query, now))):
        if _matches(db, oid, query, now):
            results.append(oid)
    return results


def partition_matches(db, query: Query, oids, now: int) -> list[OID]:
    """Evaluate *query* over one partition's oid slice, in oid order.

    The per-partition kernel of the scatter-gather executor
    (:mod:`repro.database.parallel`): a worker holds a forked snapshot
    of *db* and runs exactly the per-oid test of the serial scan over
    its slice, so concatenating the slices in any order and sorting
    reproduces :func:`_scan_evaluate`'s output bit for bit.
    """
    return [oid for oid in oids if _matches(db, oid, query, now)]


def _anchor_instant(query: Query, now: int) -> int:
    """The instant whose extent the query ranges over."""
    if query.scope is TemporalScope.AT:
        assert query.at is not None
        return query.at
    return now


def _matches(db, oid: OID, query: Query, now: int) -> bool:
    obj = db.get_object(oid)
    if query.predicate is None:
        return True
    if query.scope in (TemporalScope.NOW, TemporalScope.AT):
        at = now if query.scope is TemporalScope.NOW else query.at
        assert at is not None
        return _eval_at(db, obj, query.predicate, at, now) is True
    # Only the quantified scopes range over the membership lifespan.
    membership = db.membership_times(query.class_name, oid)
    holds = evaluate_when(db, obj, query.predicate, now)
    scoped = membership
    if query.scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN):
        assert query.interval is not None
        scoped = membership & IntervalSet.span(*query.interval)
        if scoped.is_empty:
            return False
    if query.scope in (TemporalScope.SOMETIME, TemporalScope.SOMETIME_IN):
        return not (holds & scoped).is_empty
    return scoped.issubset(holds)


def evaluate_when(
    db, obj: TemporalObject, predicate: Expr, now: int
) -> IntervalSet:
    """The set of instants (up to *now*) at which *predicate* holds of
    *obj* -- the ``when()`` operator."""
    horizon = obj.lifespan.resolve(now)
    if horizon.is_empty:
        return IntervalSet.empty()
    result = IntervalSet.empty()
    extra: set[int] = set()
    if _mentions_path(predicate):
        # Path atoms depend on OTHER objects' histories; their change
        # points must also cut the segments.  Conservative and correct:
        # take every object's boundaries (histories are piecewise
        # constant between them).
        for other in db.objects():
            extra.add(other.lifespan.start)
            end = other.lifespan.end
            if not isinstance(end, int):
                pass
            elif end + 1 <= horizon.end:  # type: ignore[operator]
                extra.add(end + 1)
            for _name, value in other.temporal_items():
                for interval, _carried in value.resolved_pairs(now):
                    extra.add(interval.start)
                    pair_end = interval.end
                    assert isinstance(pair_end, int)
                    if pair_end + 1 <= horizon.end:  # type: ignore[operator]
                        extra.add(pair_end + 1)
    for segment in _segments(
        obj, horizon, now, extra, _mentioned_attributes(predicate)
    ):
        if _eval_at(db, obj, predicate, segment.start, now) is True:
            result = result | IntervalSet([segment])
    return result


def _mentioned_attributes(expr: Expr) -> set[str]:
    """The attribute names of *this* object whose histories the
    predicate reads at the evaluation instant.

    ``Attr`` reads its name; a ``Path`` reads its first step here (the
    later steps read *other* objects, whose change points enter the
    segments through the ``extra`` cuts of :func:`evaluate_when`).
    ``HistoryOf`` reads the whole history -- constant in t, so it needs
    no cut points.
    """
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Attr):
            names.add(node.name)
            continue
        if isinstance(node, Path):
            names.add(node.steps[0])
            continue
        for field in ("left", "right", "operand", "item", "collection"):
            child = getattr(node, field, None)
            if isinstance(child, Expr):
                stack.append(child)
    return names


def _segments(
    obj: TemporalObject,
    horizon: Interval,
    now: int,
    extra: set[int] | None = None,
    names: set[str] | None = None,
) -> Iterator[Interval]:
    """Maximal intervals of *horizon* on which every temporal attribute
    of *obj* is constant (and ``now`` is isolated, because static
    attributes flip from unknown to known there).  *extra* adds cut
    points (used when the predicate dereferences other objects);
    *names*, when given, prunes the cuts to the attributes the
    predicate actually mentions (histories it never reads cannot change
    its value)."""
    boundaries: set[int] = {horizon.start}
    if extra:
        boundaries |= extra
    for name, value in obj.temporal_items():
        if names is not None and name not in names:
            continue
        for interval, _carried in value.resolved_pairs(now):
            boundaries.add(interval.start)
            end = interval.end
            assert isinstance(end, int)
            if end + 1 <= horizon.end:  # type: ignore[operator]
                boundaries.add(end + 1)
    if horizon.contains(now):
        boundaries.add(now)  # static attributes become visible at now
    cuts = sorted(b for b in boundaries if horizon.contains(b))
    for index, start in enumerate(cuts):
        end = cuts[index + 1] - 1 if index + 1 < len(cuts) else horizon.end
        yield Interval(start, end)  # type: ignore[arg-type]


def _read_attribute(obj: TemporalObject, name: str, t: int, now: int) -> Any:
    """One attribute of one object at one instant (Attr semantics)."""
    value = obj.value.get(name, _UNDEF)
    if value is _UNDEF:
        retained = obj.retained.get(name)
        if retained is not None and retained.defined_at(t):
            return retained.at(t)
        return _UNDEF
    if isinstance(value, TemporalValue):
        return value.at(t) if value.defined_at(t) else _UNDEF
    return value if t == now else _UNDEF


def _mentions_path(expr: Expr) -> bool:
    if isinstance(expr, Path):
        return True
    for field in ("left", "right", "operand", "item", "collection"):
        child = getattr(expr, field, None)
        if isinstance(child, Expr) and _mentions_path(child):
            return True
    return False


def _eval_at(db, obj: TemporalObject, expr: Expr, t: int, now: int) -> Any:
    """Evaluate *expr* for *obj* at instant *t*; ``_UNDEF`` when an
    atom touches a value unknown at *t*."""
    if isinstance(expr, Attr):
        return _read_attribute(obj, expr.name, t, now)
    if isinstance(expr, Path):
        current_obj = obj
        value: Any = _UNDEF
        for index, step in enumerate(expr.steps):
            value = _read_attribute(current_obj, step, t, now)
            if value is _UNDEF or is_null(value):
                return _UNDEF if index < len(expr.steps) - 1 else value
            if index == len(expr.steps) - 1:
                return value
            if not isinstance(value, OID):
                return _UNDEF
            try:
                current_obj = db.get_object(value)
            except Exception:
                return _UNDEF
            if not current_obj.alive_at(t, now):
                return _UNDEF
        return value
    if isinstance(expr, HistoryOf):
        history = obj.temporal_value(expr.name)
        return history if history is not None else _UNDEF
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Compare):
        left = _eval_at(db, obj, expr.left, t, now)
        right = _eval_at(db, obj, expr.right, t, now)
        if left is _UNDEF or right is _UNDEF:
            return False
        if is_null(left) or is_null(right):
            return False
        return _compare(expr.op, left, right)
    if isinstance(expr, And):
        return (
            _eval_at(db, obj, expr.left, t, now) is True
            and _eval_at(db, obj, expr.right, t, now) is True
        )
    if isinstance(expr, Or):
        return (
            _eval_at(db, obj, expr.left, t, now) is True
            or _eval_at(db, obj, expr.right, t, now) is True
        )
    if isinstance(expr, Not):
        return _eval_at(db, obj, expr.operand, t, now) is not True
    if isinstance(expr, (In, Contains)):
        item = _eval_at(db, obj, expr.item, t, now)
        collection = _eval_at(db, obj, expr.collection, t, now)
        if item is _UNDEF or collection is _UNDEF:
            return False
        if is_null(collection) or not isinstance(
            collection, (set, frozenset, list, tuple)
        ):
            return False
        return any(values_equal(item, member) for member in collection)
    if isinstance(expr, SizeOf):
        operand = _eval_at(db, obj, expr.operand, t, now)
        if operand is _UNDEF or is_null(operand):
            return _UNDEF
        if not isinstance(operand, (set, frozenset, list, tuple)):
            return _UNDEF
        return len(operand)
    raise QueryError(f"unknown expression {expr!r}")


def _compare(op: CompareOp, left: Any, right: Any) -> bool:
    if op is CompareOp.EQ:
        return values_equal(left, right)
    if op is CompareOp.NE:
        return not values_equal(left, right)
    try:
        if op is CompareOp.LT:
            return left < right
        if op is CompareOp.LE:
            return left <= right
        if op is CompareOp.GT:
            return left > right
        return left >= right
    except TypeError:
        return False
