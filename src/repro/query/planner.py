"""Cost-based query planning over the secondary attribute indexes.

The brute-force evaluator (:mod:`repro.query.evaluator`) scans the full
anchor extent and evaluates the predicate object by object -- O(|extent|
x history) regardless of selectivity.  The planner recovers the access
paths the temporal-relational literature assumes: it normalizes the
predicate into conjuncts, pushes the *indexable atoms* down to posting
list probes against :mod:`repro.database.attr_indexes`, intersects the
probe results with the anchor extent, and leaves only the *residual*
conjuncts for the per-object evaluator.

Indexable atoms (all null-rejecting, all with one side a constant the
index can key -- int/float, bool, str, oid):

* ``Attr(a) <op> Const(c)`` for every op except ``<>`` (inequality
  matches the unindexable carriers too, so it stays residual);
* ``Const(c) in Attr(a)`` / ``Contains(Attr(a), Const(c))`` -- element
  probes against collection-valued histories;
* ``Attr(a) in Const(coll)`` / ``Contains(Const(coll), Attr(a))`` when
  every member of the collection is keyable -- a disjunction of
  equality probes.  (A null member must stay residual: ``NULL in
  {NULL}`` is *true* under ``values_equal``, and the index never
  stores nulls.)

Soundness does not depend on every stored value being keyable: a
keyable constant can never compare equal (``values_equal``) or ordered
(``TypeError`` -> false) against an unkeyable stored value, so postings
restricted to keyable values are exact for these atoms.

Execution is scope-aware.  ``NOW``/``AT`` intersect instant-stab sets;
the quantified scopes intersect per-oid :class:`IntervalSet` hold-sets,
which prunes an object *before* its membership lifespan or residual
segments are ever computed.  Results are provably identical to the
scan path (``tests/test_query_oracle.py`` holds the two equal on
randomized stores and queries).

Scan-path plans additionally carry a *parallelism degree*: when the
scatter-gather executor (:mod:`repro.database.parallel`) is usable and
``cost_scan / degree + scatter_overhead`` beats the serial scan --
quantified scopes weight the serial side, since their per-object
evaluation walks whole histories -- execution fans the extent out over
the oid-hash partitions and merges in order.  ``EXPLAIN`` renders the
chosen degree; ``REPRO_NO_PARALLEL`` ablates it independently of the
planner switch, and pool failure degrades to the identical serial scan.

Ablation: set ``REPRO_NO_PLANNER=1`` in the environment (read at
import), or call :func:`set_enabled` / use :func:`disabled`.  The
planner also stands down when the database carries no cache layer or
when :mod:`repro.perf` caching is globally disabled (the index registry
refuses lookups then).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import perf
from repro.database import parallel
from repro.obs import spans as obs
from repro.query.ast import (
    And,
    Attr,
    Compare,
    CompareOp,
    Const,
    Contains,
    Expr,
    In,
    Not,
    Query,
    TemporalScope,
)
from repro.temporal.intervalsets import IntervalSet
from repro.values.null import is_null
from repro.values.oid import OID

_PROBES = perf.metric("planner.index_probes")
_FALLBACK = perf.metric("planner.fallback_scans")
_PRUNED = perf.metric("planner.rows_pruned")

#: Relative cost of one per-object predicate evaluation vs. touching
#: one posting-list entry.  Evaluation walks segments and allocates;
#: a posting entry is a set operation.
EVAL_COST = 4.0

#: Extra per-evaluation cost when the predicate may fault a cold page
#: from the on-disk segment tier (:mod:`repro.database.segments`).  A
#: page fault is a read syscall plus CRC verification plus JSON decode
#: -- orders of magnitude above an in-memory comparison -- so scans
#: over spilled histories are penalized in proportion to how much of
#: the database is cold, steering the planner toward index probes
#: (which touch far fewer objects) on paged databases.
COLD_READ_PENALTY = 12.0


def _cold_penalty(db) -> float:
    """Per-evaluation surcharge scaled by the cold fraction of *db*."""
    cold = getattr(db, "segment_values", 0)
    if not cold:
        return 0.0
    objects = getattr(db, "_objects", None)
    fraction = min(1.0, cold / max(1, len(objects) if objects else 1))
    return COLD_READ_PENALTY * fraction

#: An index probe must promise at least this pruning factor over the
#: extent to be worth running (unselective probes cost their posting
#: walk and prune nothing).
MIN_SELECTIVITY = 0.5

#: Estimated cost per journal LSN of reconstructing a historical
#: ``AS OF`` state (checkpoint load + record replay, amortized).  An
#: at-head ``AS OF`` costs nothing -- the believed state is the live
#: state -- which is why E19 gates it at <= 1.1x plain reads; a
#: historical pin pays one reconstruction (memoized thereafter in
#: :mod:`repro.bitemporal.asof`).  Charged as a plan-level surcharge,
#: not into the index-vs-scan choice: both access paths read the same
#: reconstructed state.
RECONSTRUCT_COST = 6.0

#: The planner switch.  ``REPRO_NO_PLANNER=1`` ablates at import.
is_enabled: bool = os.environ.get("REPRO_NO_PLANNER", "") not in (
    "1", "true", "yes",
)


def set_enabled(flag: bool) -> bool:
    """Enable/disable the planner; returns the previous state."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the brute-force scan path (ablation baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


# --------------------------------------------------------------- plans


@dataclass
class ProbeReport:
    """One index probe of a plan (the EXPLAIN row)."""

    attribute: str
    atom: str
    estimated: int
    index_entries: int

    def render(self) -> str:
        return (
            f"index probe  {self.atom}  "
            f"(est. {self.estimated} oid(s), "
            f"{self.index_entries} key(s) indexed)"
        )


@dataclass
class Plan:
    """The chosen access path for one query, with cost estimates.

    ``actual_candidates``/``actual_results`` stay ``None`` until the
    plan is executed (:func:`run` fills them in).
    """

    class_name: str
    scope: str
    access_path: str  # "index" | "scan"
    reason: str
    extent_size: int
    probes: tuple[ProbeReport, ...] = ()
    residual: tuple[str, ...] = ()
    est_candidates: int = 0
    est_cost_index: float | None = None
    est_cost_scan: float = 0.0
    #: The pinned transaction time (commit LSN) of an ``AS OF`` query;
    #: ``None`` for ordinary head reads.  ``est_cost_reconstruct`` is
    #: the surcharge for rebuilding the believed state -- 0.0 when the
    #: pin is at the journal head (live state, full index stack).
    as_of: int | None = None
    est_cost_reconstruct: float | None = None
    #: Parallelism degree for the scan path: 1 = serial, >1 = scatter
    #: the extent over that many partitions (index paths stay serial
    #: -- they already touch only the matching postings).
    degree: int = 1
    est_cost_parallel: float | None = None
    actual_candidates: int | None = None
    actual_results: int | None = None
    # Execution payload: (AttributeIndex, spec) per probe, plus the
    # residual conjunct expressions.  Not part of the EXPLAIN text.
    _atoms: list = field(default_factory=list, repr=False)
    _residual_exprs: list = field(default_factory=list, repr=False)

    def render(self) -> str:
        lines = [
            f"query    select {self.class_name} [{self.scope}]",
            f"path     {self.access_path.upper()}  ({self.reason})",
            f"extent   {self.extent_size} oid(s)",
        ]
        if self.as_of is not None:
            assert self.est_cost_reconstruct is not None
            pinned = (
                "at head, live state"
                if self.est_cost_reconstruct == 0.0
                else "historical, est. reconstruction cost "
                f"{self.est_cost_reconstruct:.0f}"
            )
            lines.append(f"txn-time as of lsn {self.as_of}  ({pinned})")
        for probe in self.probes:
            lines.append(f"         {probe.render()}")
        if self.residual:
            lines.append(
                f"residual {len(self.residual)} conjunct(s): "
                + "; ".join(self.residual)
            )
        if self.est_cost_index is not None:
            lines.append(
                f"cost     index={self.est_cost_index:.0f} "
                f"scan={self.est_cost_scan:.0f} "
                f"(est. {self.est_candidates} candidate(s))"
            )
        else:
            lines.append(f"cost     scan={self.est_cost_scan:.0f}")
        if self.degree > 1:
            assert self.est_cost_parallel is not None
            lines.append(
                f"parallel degree={self.degree}  "
                f"(scatter-gather, est. cost "
                f"{self.est_cost_parallel:.0f})"
            )
        if self.actual_candidates is not None:
            lines.append(
                f"actual   {self.actual_candidates} candidate(s) "
                f"after probes, {self.actual_results} result(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "class": self.class_name,
            "scope": self.scope,
            "access_path": self.access_path,
            "reason": self.reason,
            "extent_size": self.extent_size,
            "probes": [
                {
                    "attribute": p.attribute,
                    "atom": p.atom,
                    "estimated": p.estimated,
                }
                for p in self.probes
            ],
            "residual": list(self.residual),
            "est_candidates": self.est_candidates,
            "as_of": self.as_of,
            "est_cost_reconstruct": self.est_cost_reconstruct,
            "degree": self.degree,
            "actual_candidates": self.actual_candidates,
            "actual_results": self.actual_results,
        }


# ------------------------------------------------- predicate analysis


def _flatten(expr: Expr, out: list[Expr]) -> None:
    """Split *expr* into conjuncts; double negations stripped."""
    if isinstance(expr, And):
        _flatten(expr.left, out)
        _flatten(expr.right, out)
        return
    if isinstance(expr, Not) and isinstance(expr.operand, Not):
        _flatten(expr.operand.operand, out)
        return
    out.append(expr)


def conjuncts(predicate: Expr) -> list[Expr]:
    out: list[Expr] = []
    _flatten(predicate, out)
    return out


def _keyable(value: Any) -> bool:
    from repro.database.attr_indexes import value_key

    return not is_null(value) and value_key(value) is not None


def atom_spec(conjunct: Expr) -> tuple[str, tuple] | None:
    """``(attribute name, probe spec)`` when *conjunct* is indexable."""
    if isinstance(conjunct, Compare):
        op, left, right = conjunct.op, conjunct.left, conjunct.right
        if isinstance(left, Const) and isinstance(right, Attr):
            left, right = right, left
            op = _FLIP.get(op, op)
        if (
            isinstance(left, Attr)
            and isinstance(right, Const)
            and op is not CompareOp.NE
            and _keyable(right.value)
        ):
            return left.name, ("cmp", op, right.value)
        return None
    if isinstance(conjunct, (In, Contains)):
        item, collection = conjunct.item, conjunct.collection
        if isinstance(collection, Attr) and isinstance(item, Const):
            if _keyable(item.value):
                return collection.name, ("member", item.value)
            return None
        if isinstance(item, Attr) and isinstance(collection, Const):
            members = collection.value
            if not isinstance(members, (set, frozenset, list, tuple)):
                return None
            if all(_keyable(member) for member in members):
                return item.name, ("val-in", tuple(members))
        return None
    return None


_FLIP = {
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
}


def _describe(expr: Expr) -> str:
    """A compact one-line rendering of *expr* for EXPLAIN output."""
    from repro.query.ast import (
        HistoryOf,
        Or,
        Path,
        SizeOf,
    )

    if isinstance(expr, Attr):
        return expr.name
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Path):
        return ".".join(expr.steps)
    if isinstance(expr, HistoryOf):
        return f"history({expr.name})"
    if isinstance(expr, Compare):
        return (
            f"{_describe(expr.left)} {expr.op.value} "
            f"{_describe(expr.right)}"
        )
    if isinstance(expr, And):
        return f"({_describe(expr.left)} and {_describe(expr.right)})"
    if isinstance(expr, Or):
        return f"({_describe(expr.left)} or {_describe(expr.right)})"
    if isinstance(expr, Not):
        return f"not {_describe(expr.operand)}"
    if isinstance(expr, In):
        return f"{_describe(expr.item)} in {_describe(expr.collection)}"
    if isinstance(expr, Contains):
        return (
            f"{_describe(expr.collection)} contains "
            f"{_describe(expr.item)}"
        )
    if isinstance(expr, SizeOf):
        return f"size({_describe(expr.operand)})"
    return type(expr).__name__


# ------------------------------------------------------------ planning


def _finalize_scan(db, chosen: Plan, query: Query) -> Plan:
    """Decide the parallelism degree for a scan-path plan.

    The cost model is ``cost_scan / degree + scatter_overhead`` (see
    :func:`repro.database.parallel.plan_degree`); quantified scopes
    weight the serial side because their per-object evaluation walks
    whole histories, which is exactly where scatter pays best.  A plan
    without residual work (no predicate) stays serial -- shipping oids
    to workers that test nothing can only lose.
    """
    if chosen.access_path != "scan" or not chosen._residual_exprs:
        return chosen
    quantified = query.scope not in (
        TemporalScope.NOW, TemporalScope.AT,
    )
    degree, cost_parallel = parallel.plan_degree(
        db, chosen.extent_size, chosen.est_cost_scan, quantified
    )
    chosen.degree = degree
    chosen.est_cost_parallel = cost_parallel if degree > 1 else None
    return chosen


def _reconstruct_cost(db, query: Query) -> float | None:
    """The ``AS OF`` surcharge: 0 at the journal head (the believed
    state is the live state), proportional to the replayed prefix for a
    historical pin.  *db* is the already-resolved target -- a detached
    reconstruction has no journal, the live database has one."""
    if query.as_of is None:
        return None
    journal = getattr(db, "journal", None)
    if journal is not None and journal.last_lsn == query.as_of:
        return 0.0
    return RECONSTRUCT_COST * query.as_of


def plan(db, query: Query) -> Plan:
    """Choose the access path for *query* (no execution)."""
    if obs.is_enabled:
        with obs.span("planner.plan", cls=query.class_name) as sp:
            chosen = _plan(db, query)
            sp.annotate(path=chosen.access_path)
            return chosen
    return _plan(db, query)


def _plan(db, query: Query) -> Plan:
    now = db.now
    anchor = query.at if query.scope is TemporalScope.AT else now
    extent_at = getattr(db, "anchor_extent", db.pi)
    extent = extent_at(query.class_name, anchor)
    n = len(extent)
    scope = query.scope.value
    if query.at is not None:
        scope += f" {query.at}"
    elif query.interval is not None:
        scope += f" [{query.interval[0]},{query.interval[1]}]"
    if query.as_of is not None:
        scope += f" as of {query.as_of}"
    cost_reconstruct = _reconstruct_cost(db, query)

    atoms = conjuncts(query.predicate) if query.predicate else []
    eval_cost = EVAL_COST + _cold_penalty(db)
    cost_scan = n * (len(atoms) * eval_cost + 1.0)
    base = Plan(
        class_name=query.class_name,
        scope=scope,
        access_path="scan",
        reason="",
        extent_size=n,
        residual=tuple(_describe(a) for a in atoms),
        est_candidates=n,
        est_cost_scan=cost_scan,
        as_of=query.as_of,
        est_cost_reconstruct=cost_reconstruct,
    )
    base._residual_exprs = list(atoms)
    if not is_enabled:
        base.reason = "planner disabled"
        return _finalize_scan(db, base, query)
    if not atoms:
        base.reason = "no predicate"
        return base
    registry = getattr(getattr(db, "caches", None), "attr_indexes", None)
    if registry is None:
        base.reason = "database has no index layer"
        return _finalize_scan(db, base, query)

    probes: list[tuple[Expr, Any, tuple, int]] = []
    residual: list[Expr] = []
    for conjunct in atoms:
        spec = atom_spec(conjunct)
        index = (
            registry.get(db, spec[0]) if spec is not None else None
        )
        if spec is None or index is None or not index.supports(spec[1]):
            residual.append(conjunct)
            continue
        probes.append((conjunct, index, spec[1], index.estimate(spec[1])))
    if not probes:
        base.reason = (
            "caching ablated"
            if not perf.is_enabled
            else "no indexable atoms"
        )
        return _finalize_scan(db, base, query)

    # Keep only probes selective enough to pay for their posting walk.
    # Sorted by estimate, the qualifying probes are a prefix; Exprs
    # overload ``==`` (builder sugar), so slice -- never membership-test.
    probes.sort(key=lambda p: p[3])
    selected = [p for p in probes if p[3] <= n * MIN_SELECTIVITY]
    residual.extend(p[0] for p in probes[len(selected):])
    if not selected:
        base.reason = "no probe selective enough"
        base.residual = tuple(_describe(a) for a in atoms)
        base._residual_exprs = list(atoms)
        return _finalize_scan(db, base, query)

    est_min = selected[0][3]
    cost_index = (
        sum(p[3] for p in selected)
        + est_min * (len(residual) * eval_cost + 1.0)
    )
    if cost_index >= cost_scan:
        base.reason = "scan estimated cheaper"
        base.est_cost_index = cost_index
        return _finalize_scan(db, base, query)

    result = Plan(
        class_name=query.class_name,
        scope=scope,
        access_path="index",
        reason=f"{len(selected)} probe(s) estimated cheaper than scan",
        extent_size=n,
        probes=tuple(
            ProbeReport(
                attribute=atom_spec(p[0])[0],  # type: ignore[index]
                atom=_describe(p[0]),
                estimated=p[3],
                index_entries=p[1].sizes()["values"]
                + p[1].sizes()["elements"],
            )
            for p in selected
        ),
        residual=tuple(_describe(a) for a in residual),
        est_candidates=est_min,
        est_cost_index=cost_index,
        est_cost_scan=cost_scan,
        as_of=query.as_of,
        est_cost_reconstruct=cost_reconstruct,
    )
    result._atoms = [(p[1], p[2]) for p in selected]
    result._residual_exprs = residual
    return result


# ----------------------------------------------------------- execution


def run(db, query: Query, chosen: Plan) -> list[OID]:
    """Execute *query* along *chosen*, filling in the actuals."""
    if obs.is_enabled:
        with obs.span(
            "planner.execute",
            cls=query.class_name,
            path=chosen.access_path,
        ) as sp:
            results = _run(db, query, chosen)
            sp.annotate(results=len(results))
            return results
    return _run(db, query, chosen)


def _run(db, query: Query, chosen: Plan) -> list[OID]:
    from repro.query import evaluator

    if chosen.access_path != "index":
        _FALLBACK.add()
        results = None
        if chosen.degree > 1:
            results = parallel.scan_query(db, query, chosen)
            if results is None:
                # Pool unavailable or failed mid-scatter: the plan
                # degrades to the serial scan it is equivalent to.
                chosen.degree = 1
                chosen.est_cost_parallel = None
        if results is None:
            results = evaluator._scan_evaluate(db, query)
        chosen.actual_candidates = chosen.extent_size
        chosen.actual_results = len(results)
        return results

    now = db.now
    anchor = query.at if query.scope is TemporalScope.AT else now
    extent_at = getattr(db, "anchor_extent", db.pi)
    candidates = set(extent_at(query.class_name, anchor))
    before = len(candidates)

    point_scope = query.scope in (TemporalScope.NOW, TemporalScope.AT)
    holds_maps: list[dict[OID, IntervalSet]] = []
    for index, spec in chosen._atoms:
        _PROBES.add()
        if point_scope:
            candidates &= index.matching_at(spec, anchor, now)
        else:
            holds = index.matching_when(spec, now)
            holds_maps.append(holds)
            candidates &= holds.keys()
        if not candidates:
            break
    _PRUNED.add(before - len(candidates))
    chosen.actual_candidates = len(candidates)

    residual = chosen._residual_exprs
    results: list[OID] = []
    if point_scope:
        for oid in sorted(candidates):
            obj = db.get_object(oid)
            if all(
                evaluator._eval_at(db, obj, conjunct, anchor, now)
                is True
                for conjunct in residual
            ):
                results.append(oid)
        chosen.actual_results = len(results)
        return results

    sometime = query.scope in (
        TemporalScope.SOMETIME, TemporalScope.SOMETIME_IN,
    )
    for oid in sorted(candidates):
        membership = db.membership_times(query.class_name, oid)
        scoped = membership
        if query.scope in (
            TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN,
        ):
            assert query.interval is not None
            scoped = membership & IntervalSet.span(*query.interval)
            if scoped.is_empty:
                continue
        atom_holds: IntervalSet | None = None
        for holds_map in holds_maps:
            holds = holds_map[oid]
            atom_holds = (
                holds if atom_holds is None else atom_holds & holds
            )
        if atom_holds is not None:
            # Prune on the index hold-sets before touching segments.
            if sometime and (atom_holds & scoped).is_empty:
                continue
            if not sometime and not scoped.issubset(atom_holds):
                continue
        holds = atom_holds if atom_holds is not None else None
        if residual:
            obj = db.get_object(oid)
            resid_holds = evaluator.evaluate_when(
                db, obj, _reconjoin(residual), now
            )
            holds = (
                resid_holds if holds is None else holds & resid_holds
            )
        assert holds is not None
        if sometime:
            if not (holds & scoped).is_empty:
                results.append(oid)
        elif scoped.issubset(holds):
            results.append(oid)
    chosen.actual_results = len(results)
    return results


def _reconjoin(exprs: list[Expr]) -> Expr:
    result = exprs[0]
    for expr in exprs[1:]:
        result = And(result, expr)
    return result


def execute(db, query: Query) -> tuple[list[OID], Plan]:
    """Plan and run *query*; the tuple is ``(results, filled plan)``."""
    chosen = plan(db, query)
    return run(db, query, chosen), chosen


def explain(db, query: Query, *, execute_query: bool = True) -> Plan:
    """The EXPLAIN surface: the plan, with actuals when executed.

    An ``as_of`` query is resolved to its believed-at state first, so
    the plan (extent size, probes, costs) describes the historical
    database the query actually runs against, and the rendered plan
    shows the pinned transaction time.
    """
    if query.as_of is not None:
        from repro.bitemporal import asof as asof_mod

        db = asof_mod.as_of(db, query.as_of)
    chosen = plan(db, query)
    if execute_query:
        run(db, query, chosen)
    return chosen
