"""Query AST.

Expressions are evaluated against one object at one instant; queries
wrap a class name, a predicate and a *temporal scope* that says how the
predicate quantifies over time.

Null semantics: any comparison, membership or size applied to the null
value (or to a temporal attribute that is not meaningful at the
instant) is *false*; ``Not`` then makes it true -- the usual two-valued
reading with null-rejecting atoms, which keeps the evaluator total
without a third truth value.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.values.oid import OID


class Expr:
    """Abstract base of query expressions."""

    __slots__ = ()

    # Sugar so builder-style predicates read naturally.
    def __eq__(self, other: object):  # type: ignore[override]
        return Compare(CompareOp.EQ, self, _lift(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Compare(CompareOp.NE, self, _lift(other))

    def __lt__(self, other: Any):
        return Compare(CompareOp.LT, self, _lift(other))

    def __le__(self, other: Any):
        return Compare(CompareOp.LE, self, _lift(other))

    def __gt__(self, other: Any):
        return Compare(CompareOp.GT, self, _lift(other))

    def __ge__(self, other: Any):
        return Compare(CompareOp.GE, self, _lift(other))

    def __hash__(self) -> int:
        return object.__hash__(self)

    def is_in(self, other: Any) -> "In":
        """``self in other`` (set/list membership)."""
        return In(self, _lift(other))

    def contains(self, other: Any) -> "Contains":
        """``other in self`` (set/list membership, flipped)."""
        return Contains(self, _lift(other))

    def size(self) -> "SizeOf":
        return SizeOf(self)


def _lift(value: Any) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True, eq=False)
class Attr(Expr):
    """An attribute of the queried object (by name).

    At evaluation instant t: the value of a temporal attribute at t
    (null-rejecting when not meaningful), or the current value of a
    static attribute.
    """

    name: str


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal value."""

    value: Any


@dataclass(frozen=True, eq=False)
class Path(Expr):
    """A temporal object reference path, e.g. ``lead.name``.

    The first step is an attribute of the queried object whose domain
    is (or whose temporal domain wraps) an object type; each further
    step dereferences the oid *at the evaluation instant* and reads the
    next attribute of the referenced object -- the paper's "temporal
    object references" (Section 7).  A step is undefined (the atom is
    false) when the reference is null/undefined at that instant, when
    the referenced object does not exist then, or when a static
    attribute is read at a past instant.
    """

    steps: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.steps) < 2:
            raise ValueError("a path needs at least two steps; use Attr")


def path(*steps: str) -> Path:
    """Builder sugar: a dereferencing path (``path("lead", "name")``)."""
    return Path(tuple(steps))


@dataclass(frozen=True, eq=False)
class HistoryOf(Expr):
    """The whole temporal value of a temporal attribute (not just the
    value at the evaluation instant)."""

    name: str


class CompareOp(str, Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, eq=False)
class Compare(Expr):
    op: CompareOp
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class And(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class Or(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True, eq=False)
class In(Expr):
    """``item in collection``."""

    item: Expr
    collection: Expr


@dataclass(frozen=True, eq=False)
class Contains(Expr):
    """``collection contains item``."""

    collection: Expr
    item: Expr


@dataclass(frozen=True, eq=False)
class SizeOf(Expr):
    """The cardinality of a set/list valued expression."""

    operand: Expr


class TemporalScope(str, Enum):
    """How a query predicate quantifies over time."""

    NOW = "now"            # at the current instant
    AT = "at"              # at one given instant
    SOMETIME = "sometime"  # exists t in the membership lifespan
    ALWAYS = "always"      # forall t in the membership lifespan
    SOMETIME_IN = "sometime-in"  # exists t in the given interval
    ALWAYS_IN = "always-in"      # forall t in the given interval


@dataclass(frozen=True)
class Query:
    """``select <class> [where <pred>] [<scope>] [as of <lsn>]``.

    ``as_of`` pins the *transaction-time* dimension: the query runs
    against the state believed at that commit LSN
    (:mod:`repro.bitemporal.asof`), while the scope/at/interval fields
    keep quantifying over *valid* time -- the two dimensions are
    orthogonal.  ``None`` means the current head (the ordinary read).
    """

    class_name: str
    predicate: Expr | None = None
    scope: TemporalScope = TemporalScope.NOW
    at: int | None = None
    interval: tuple[int, int] | None = None
    as_of: int | None = None


def attr(name: str) -> Attr:
    """Builder sugar: an attribute reference."""
    return Attr(name)


def const(value: Any) -> Const:
    """Builder sugar: a literal."""
    return Const(value)
