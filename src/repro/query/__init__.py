"""A temporal query language over T_Chimera databases.

The paper defers the query language to future work (Section 7: "we are
interested in investigating temporal object references and, more
generally, issues related to the query language and its typing"); this
package supplies one, small but typed:

.. code-block:: text

    select project where name = 'IDEA' at 50
    select employee where salary >= 2000 sometime
    select manager where size(dependents) > 2 always in [10, 40]
    history of i where participants contains i2     -- a when() query

Structure:

* :mod:`repro.query.ast` -- expression and query nodes;
* :mod:`repro.query.typing` -- static type checking of predicates
  against the class's structural type, using the Definition 3.6 rules
  and the ``<=_T`` order;
* :mod:`repro.query.evaluator` -- evaluation with the model's
  semantics: a predicate is evaluated per instant against the object's
  snapshot; ``at``/``sometime``/``always``/``during`` quantify over the
  membership lifespan; evaluation is segment-wise (piecewise-constant
  histories), never per-instant;
* :mod:`repro.query.parser` -- the concrete syntax above;
* :mod:`repro.query.planner` -- cost-based access-path selection over
  the secondary attribute indexes, with an EXPLAIN surface
  (:func:`explain`) and an ablation switch (``REPRO_NO_PLANNER``);
* a fluent builder: ``select("project").where(attr("name") ==
  const("IDEA")).at(50)``.
"""

from repro.query.ast import (
    And,
    Attr,
    Compare,
    Const,
    Contains,
    HistoryOf,
    In,
    Not,
    Or,
    Path,
    Query,
    SizeOf,
    attr,
    const,
    path,
)
from repro.query.builder import select, when
from repro.query.evaluator import evaluate, evaluate_when
from repro.query.parser import parse_query
from repro.query.planner import Plan, ProbeReport, explain, plan
from repro.query.typing import type_check

__all__ = [
    "Attr",
    "Const",
    "Compare",
    "And",
    "Or",
    "Not",
    "In",
    "Contains",
    "SizeOf",
    "HistoryOf",
    "Path",
    "path",
    "Query",
    "attr",
    "const",
    "select",
    "when",
    "evaluate",
    "evaluate_when",
    "explain",
    "parse_query",
    "plan",
    "Plan",
    "ProbeReport",
    "type_check",
]
