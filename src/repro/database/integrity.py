"""Database-wide integrity: the model's invariants, executably.

* **Invariant 5.1** -- class extents agree with object lifespans and
  class histories:

  1. ``i in C.history.ext(t)`` implies ``t in o_lifespan(i)``;
  2. ``i in C.history.proper-ext(t)`` throughout tau  iff
     ``<tau, c> in o.class-history``.

* **Invariant 5.2** -- lifespans partition by class membership:

  1. ``o_lifespan(i) = U_c c_lifespan(i, c)``;
  2. ``t in c_lifespan(i, c)``  iff  ``i in C.history.ext(t)``.

* **Invariant 6.1** -- extent inclusion along ISA: sublifespans inside
  superlifespans, ``ext`` inclusion at every instant, ``c_lifespan``
  inclusion per object.

* **Invariant 6.2** -- hierarchy disjointness: the sets of oids that
  have *ever* belonged to different hierarchies are disjoint.

* **Definition 5.6** -- a consistent set of objects: OID-UNIQUENESS and
  referential integrity at an instant.

Every checker returns a list of human-readable violation strings
(empty = invariant holds); :func:`check_database` aggregates them into
an :class:`IntegrityReport`.  The engine maintains these invariants by
construction; the checkers exist to *demonstrate* that (they run after
every randomized workload in the test suite) and to validate external
data loaded through persistence.

Instant sampling: the invariants quantify over all of TIME, but every
quantity involved (extents, lifespans, class histories) is piecewise
constant, changing only at recorded boundaries; the checkers collect
those boundaries and check one representative per segment.

Single-pass walking: every per-object checker accepts the object
population as an optional *objects* sequence; :func:`check_database`
materializes the store once and shares that one walk across all
checkers (and across the per-class instant sampling), instead of
re-iterating the store per check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.objects.consistency import consistency_violations
from repro.objects.object import TemporalObject
from repro.objects.references import referenced_oids
from repro.temporal.intervalsets import IntervalSet
from repro.values.oid import OID


@dataclass
class IntegrityReport:
    """The outcome of a full-database integrity check."""

    invariant_5_1: list[str] = field(default_factory=list)
    invariant_5_2: list[str] = field(default_factory=list)
    extent_inclusion: list[str] = field(default_factory=list)
    hierarchy_disjointness: list[str] = field(default_factory=list)
    oid_uniqueness: list[str] = field(default_factory=list)
    referential_integrity: list[str] = field(default_factory=list)
    object_consistency: list[str] = field(default_factory=list)
    extent_index_agreement: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.all_violations()

    def all_violations(self) -> list[str]:
        return [
            *self.invariant_5_1,
            *self.invariant_5_2,
            *self.extent_inclusion,
            *self.hierarchy_disjointness,
            *self.oid_uniqueness,
            *self.referential_integrity,
            *self.object_consistency,
            *self.extent_index_agreement,
        ]

    def __bool__(self) -> bool:
        return self.ok


def _lifespan_set(db, obj: TemporalObject) -> IntervalSet:
    return IntervalSet([obj.lifespan], now=db.now)


def o_lifespan_of(db, oid: OID) -> IntervalSet:
    """``o_lifespan(i)`` as an interval set (see model_functions)."""
    return _lifespan_set(db, db.get_object(oid))


def c_lifespan_of(db, oid: OID, class_name: str) -> IntervalSet:
    """``c_lifespan(i, c)``: instants at which i is a member of c.

    Computed from the object's class history and the ISA order
    (footnote 6: the union of the tau_i whose c_i is a subclass of c).
    """
    obj = db.get_object(oid)
    result = IntervalSet.empty()
    for interval, most_specific in obj.class_history.pairs():
        if db.isa.isa_le(most_specific, class_name):
            result = result | IntervalSet([interval], now=db.now)
    return result


def _sample_instants(
    db, objects: Sequence[TemporalObject] | None = None
) -> list[int]:
    """One representative instant per segment of piecewise-constant
    database history (all boundary instants of every extent, lifespan
    and class history, capped at now)."""
    now = db.now
    points: set[int] = {0, now}
    for cls in db.classes():
        points.add(cls.lifespan.start)
        for interval, _v in cls.history.ext.resolved_pairs(now):
            points.add(interval.start)
            if isinstance(interval.end, int):
                points.update((interval.end, min(interval.end + 1, now)))
    for obj in db.objects() if objects is None else objects:
        points.add(obj.lifespan.start)
        for interval, _v in obj.class_history.resolved_pairs(now):
            points.add(interval.start)
            if isinstance(interval.end, int):
                points.update((interval.end, min(interval.end + 1, now)))
    return sorted(p for p in points if 0 <= p <= now)


def check_invariant_5_1(
    db, objects: Sequence[TemporalObject] | None = None
) -> list[str]:
    """Invariant 5.1: extents vs. lifespans and class histories."""
    problems = _check_5_1_classes(db)
    problems.extend(
        _check_5_1_objects(
            db, list(db.objects()) if objects is None else objects
        )
    )
    return problems


def _check_5_1_classes(db) -> list[str]:
    """The class-level half of Invariant 5.1 (5.1.1 and 5.1.2 <=).

    Quantifies over class histories, not the object population, so the
    scatter-gather fan-out must run it exactly once in the parent --
    repeating it per oid slice would duplicate every violation.
    """
    problems: list[str] = []
    now = db.now
    for cls in db.classes():
        for oid in cls.history.ever_members():
            member_times = cls.history.member_times(oid, now)
            obj = db.get_object(oid)
            life = _lifespan_set(db, obj)
            if not member_times.issubset(life):
                problems.append(
                    f"5.1.1: {oid!r} in ext of {cls.name!r} at "
                    f"{member_times - life}, outside its lifespan"
                )
        # 5.1.2 (<=): instance intervals appear in the class history.
        for oid in cls.history.ever_members():
            instance_times = cls.history.instance_times(oid, now)
            if instance_times.is_empty:
                continue
            obj = db.get_object(oid)
            from_history = IntervalSet(
                (
                    interval
                    for interval, c in obj.class_history.pairs()
                    if c == cls.name
                ),
                now=now,
            )
            if instance_times != from_history:
                problems.append(
                    f"5.1.2: proper-ext of {cls.name!r} records {oid!r} "
                    f"during {instance_times}, but its class history "
                    f"says {from_history}"
                )
    return problems


def _check_5_1_objects(
    db, objects: Sequence[TemporalObject]
) -> list[str]:
    """The per-object half of Invariant 5.1 (5.1.2 =>): class-history
    pairs appear in proper-ext.  Safe to run over any slice of the
    population (each object is checked independently)."""
    problems: list[str] = []
    now = db.now
    for obj in objects:
        for interval, class_name in obj.class_history.pairs():
            if not db.known_class(class_name):
                problems.append(
                    f"5.1.2: {obj.oid!r} class history names unknown "
                    f"class {class_name!r}"
                )
                continue
            cls = db.get_class(class_name)
            span = IntervalSet([interval], now=now)
            if not span.issubset(
                cls.history.instance_times(obj.oid, now)
            ):
                problems.append(
                    f"5.1.2: <{interval}, {class_name}> in the class "
                    f"history of {obj.oid!r} is not reflected in "
                    f"proper-ext"
                )
    return problems


def check_invariant_5_2(
    db, objects: Sequence[TemporalObject] | None = None
) -> list[str]:
    """Invariant 5.2: lifespans vs. per-class membership lifespans."""
    problems: list[str] = []
    now = db.now
    for obj in db.objects() if objects is None else objects:
        life = _lifespan_set(db, obj)
        union = IntervalSet.empty()
        for class_name in db.class_names():
            membership = c_lifespan_of(db, obj.oid, class_name)
            union = union | membership
            # 5.2.2: c_lifespan agrees with the class's ext.
            from_ext = db.membership_times(class_name, obj.oid)
            if membership != from_ext:
                problems.append(
                    f"5.2.2: c_lifespan({obj.oid!r}, {class_name!r}) = "
                    f"{membership} but ext records {from_ext}"
                )
        if union != life:
            problems.append(
                f"5.2.1: o_lifespan({obj.oid!r}) = {life} but the union "
                f"of its class memberships is {union}"
            )
    return problems


def check_extent_inclusion(db) -> list[str]:
    """Invariant 6.1: subclass extents inside superclass extents."""
    problems: list[str] = []
    now = db.now
    for sub_name in db.class_names():
        sub = db.get_class(sub_name)
        for super_name in db.isa.superclasses(sub_name, strict=True):
            sup = db.get_class(super_name)
            if not sub.lifespan.issubset(sup.lifespan, now):
                problems.append(
                    f"6.1.1: lifespan of {sub_name!r} "
                    f"{sub.lifespan.resolve(now)} exceeds that of "
                    f"{super_name!r} {sup.lifespan.resolve(now)}"
                )
            for oid in sub.history.ever_members():
                sub_times = sub.history.member_times(oid, now)
                sup_times = sup.history.member_times(oid, now)
                if not sub_times.issubset(sup_times):
                    problems.append(
                        f"6.1.2/3: {oid!r} member of {sub_name!r} during "
                        f"{sub_times - sup_times} without being a member "
                        f"of superclass {super_name!r}"
                    )
    return problems


def check_hierarchy_disjointness(db) -> list[str]:
    """Invariant 6.2: ever-extents of different hierarchies disjoint."""
    problems: list[str] = []
    populations: dict[str, set[OID]] = {}
    for class_name in db.class_names():
        hierarchy = db.isa.hierarchy_of(class_name)
        populations.setdefault(hierarchy, set()).update(
            db.get_class(class_name).history.ever_members()
        )
    seen: dict[OID, str] = {}
    for hierarchy, oids in sorted(populations.items()):
        for oid in oids:
            if oid in seen and seen[oid] != hierarchy:
                problems.append(
                    f"6.2: {oid!r} has belonged to hierarchies "
                    f"{seen[oid]!r} and {hierarchy!r}"
                )
            seen.setdefault(oid, hierarchy)
    # The oid brand must agree with the recorded hierarchy.
    for oid, hierarchy in seen.items():
        if oid.hierarchy and oid.hierarchy != hierarchy:
            problems.append(
                f"6.2: {oid!r} is branded {oid.hierarchy!r} but belongs "
                f"to hierarchy {hierarchy!r}"
            )
    return problems


def check_oid_uniqueness(objects: Iterable[TemporalObject]) -> list[str]:
    """Definition 5.6 condition 1 over an explicit set of objects.

    (A database keyed by oid satisfies it by construction; this checker
    serves external object sets, e.g. loaded from persistence.)
    """
    problems: list[str] = []
    seen: dict[OID, TemporalObject] = {}
    for obj in objects:
        other = seen.get(obj.oid)
        if other is None:
            seen[obj.oid] = obj
            continue
        if (
            other.lifespan != obj.lifespan
            or other.value != obj.value
            or other.class_history != obj.class_history
        ):
            problems.append(
                f"5.6.1 OID-UNIQUENESS: two distinct objects share oid "
                f"{obj.oid!r}"
            )
    return problems


def check_referential_integrity(
    db,
    t: int | None = None,
    objects: Sequence[TemporalObject] | None = None,
    known: set[OID] | None = None,
) -> list[str]:
    """Definition 5.6 condition 2 at instant *t* (default: now),
    strengthened per Section 5.2: if o refers to o' at t, then t lies
    in the lifespan of both.

    *known* is the reference universe, defaulting to the oids of
    *objects*.  A caller checking a population *slice* (the parallel
    fan-out) must pass the full universe explicitly -- otherwise every
    cross-slice reference would be a false violation."""
    problems: list[str] = []
    now = db.now
    at = now if t is None else t
    if objects is None:
        objects = list(db.objects())
    if known is None:
        known = {obj.oid for obj in objects}
    for obj in objects:
        if not obj.alive_at(at, now):
            continue
        for ref in referenced_oids(obj, at, now):
            if ref not in known:
                problems.append(
                    f"5.6.2: {obj.oid!r} refers to unknown oid {ref!r} "
                    f"at time {at}"
                )
            elif not db.get_object(ref).alive_at(at, now):
                problems.append(
                    f"5.6.2: {obj.oid!r} refers to {ref!r} at time "
                    f"{at}, outside the lifespan of {ref!r}"
                )
    return problems


def check_extent_index_agreement(
    db,
    objects: Sequence[TemporalObject] | None = None,
    samples: Sequence[int] | None = None,
) -> list[str]:
    """The redundant extent representations agree: the set-valued
    ``ext`` history and the per-oid interval index (see ClassHistory).

    *samples* lets a caller that already collected the boundary
    instants (one walk of the full population) pass them in; without
    it the checker re-walks *objects* itself."""
    problems: list[str] = []
    # The sample instants are class-independent: collect them once,
    # not once per class (nor once per partition-sized slice).
    if samples is None:
        samples = _sample_instants(db, objects)
    for cls in db.classes():
        for t in samples:
            via_sets = cls.history.members_at(t)
            via_index = cls.history.members_at_via_scan(t)
            if via_sets != via_index:
                problems.append(
                    f"ext history and index disagree for {cls.name!r} "
                    f"at {t}: {via_sets ^ via_index}"
                )
    return problems


def check_object_consistency(
    db, objects: Sequence[TemporalObject] | None = None
) -> list[str]:
    """Definition 5.5 for every object of the database."""
    problems: list[str] = []
    for obj in db.objects() if objects is None else objects:
        for problem in consistency_violations(obj, db, db, db.now):
            problems.append(f"{obj.oid!r}: {problem}")
    return problems


#: IntegrityReport fields filled by the per-object checkers -- the
#: half of a full check that the scatter-gather fan-out distributes.
_PER_OBJECT_FIELDS = (
    "invariant_5_1",
    "invariant_5_2",
    "referential_integrity",
    "object_consistency",
)


def check_database(
    db,
    include_index_check: bool = True,
    use_parallel: bool | None = None,
) -> IntegrityReport:
    """Run every checker and aggregate the violations.

    The object population is materialized once and shared by every
    per-object checker -- one walk of the store, not one per check;
    the boundary-instant sample for the extent-index cross-check is
    hoisted out of the checker for the same reason.

    The per-object checkers (:data:`_PER_OBJECT_FIELDS`) fan out over
    the database's oid-hash partitions through
    :mod:`repro.database.parallel` when *use_parallel* is true (or
    None = automatic: pool usable and the population large enough);
    class-level checkers always run once, in this process.  Pool
    failure falls back to the serial walk; the merged report is
    violation-equivalent either way.
    """
    objects = list(db.objects())
    report = IntegrityReport(
        extent_inclusion=check_extent_inclusion(db),
        hierarchy_disjointness=check_hierarchy_disjointness(db),
        oid_uniqueness=check_oid_uniqueness(objects),
    )
    if include_index_check:
        report.extent_index_agreement = check_extent_index_agreement(
            db, objects, samples=_sample_instants(db, objects)
        )
    report.invariant_5_1 = _check_5_1_classes(db)

    slices = None
    if use_parallel or use_parallel is None:
        from repro.database import parallel

        if use_parallel or parallel.usable(db):
            slices = parallel.integrity_scatter(
                db, [obj.oid for obj in objects]
            )
    if slices is None:
        report.invariant_5_1.extend(_check_5_1_objects(db, objects))
        report.invariant_5_2 = check_invariant_5_2(db, objects)
        report.referential_integrity = check_referential_integrity(
            db, objects=objects
        )
        report.object_consistency = check_object_consistency(
            db, objects
        )
        return report
    for part in slices:
        report.invariant_5_1.extend(part["invariant_5_1"])
        report.invariant_5_2.extend(part["invariant_5_2"])
        report.referential_integrity.extend(
            part["referential_integrity"]
        )
        report.object_consistency.extend(part["object_consistency"])
    return report
