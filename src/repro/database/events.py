"""Database events.

The engine emits one :class:`Event` per completed update operation;
observers (the trigger machinery of :mod:`repro.triggers`, the
constraint checker of :mod:`repro.constraints`, application code)
subscribe with ``db.subscribe(callback)``.  Events are emitted *after*
the operation has been applied, carrying enough context to inspect both
the new state (via the database) and what changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.values.oid import OID


class EventKind(str, Enum):
    CREATE = "create"
    UPDATE = "update"
    MIGRATE = "migrate"
    DELETE = "delete"
    CORRECT = "correct"  # retroactive correction of a temporal attribute
    #: A completed ``db.batch()``: one coalesced notification whose
    #: ``payload`` is the ordered tuple of the per-operation events.
    #: ``oid``/``class_name`` are unset (a batch spans many objects).
    BATCH = "batch"


@dataclass(frozen=True)
class Event:
    """One completed database operation."""

    kind: EventKind
    at: int
    oid: OID
    class_name: str
    #: UPDATE only: the attribute that changed.
    attribute: str | None = None
    #: UPDATE only: the attribute value before the operation.
    old_value: Any = None
    #: UPDATE only: the attribute value after the operation.
    new_value: Any = None
    #: MIGRATE only: the previous most specific class.
    from_class: str | None = None
    #: CORRECT only: the corrected valid-time window.
    window: tuple[int, int] | None = None
    #: Replay arguments for the write-ahead journal: the caller-supplied
    #: attribute mapping for CREATE/MIGRATE, the ``force`` flag for
    #: DELETE.  None for operations whose other fields already suffice.
    payload: Any = None

    @property
    def events(self) -> tuple["Event", ...]:
        """BATCH only: the coalesced per-operation events, in order."""
        if self.kind is EventKind.BATCH:
            return tuple(self.payload or ())
        return (self,)

    def __repr__(self) -> str:
        extra = ""
        if self.kind is EventKind.BATCH:
            return f"Event(batch of {len(self.payload or ())}@{self.at})"
        if self.kind is EventKind.UPDATE:
            extra = f", {self.attribute}: {self.old_value!r} -> {self.new_value!r}"
        if self.kind is EventKind.MIGRATE:
            extra = f", from {self.from_class!r}"
        if self.kind is EventKind.CORRECT:
            extra = f", {self.attribute} over {self.window}"
        return (
            f"Event({self.kind.value} {self.oid!r}:{self.class_name}"
            f"@{self.at}{extra})"
        )
