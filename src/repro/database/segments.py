"""Cold-segment storage: the paged on-disk tier for temporal history.

The paper's model makes every temporal attribute a total function over
time, so histories only ever grow -- but almost all of that history is
cold: queries overwhelmingly read at or near ``now``.  This module
splits each sufficiently long history into a **hot in-memory tail**
(the last few pairs plus the open pair, served exactly as before) and
**immutable cold segments** spilled to disk at checkpoint time, loaded
back lazily page by page through the byte-budgeted LRU cache in
:mod:`repro.database.pagecache`.

Segment file format (``segments-<lsn>.seg``)
--------------------------------------------
One file per checkpoint generation, written atomically
(write-tmp + fsync + rename) *before* the checkpoint document that
references it::

    TCSEG001                     8-byte magic
    <page frame> * N             length+CRC32-framed JSON pair pages
    <footer frame>               framed JSON index (see below)
    <footer offset>              8-byte LE offset of the footer frame

Each page frame reuses the WAL framing idiom -- 4-byte LE body length,
4-byte LE CRC-32 of the body, then the body: a JSON list of
``[start, end, encoded-value]`` triples (cold pairs are always closed,
the open pair never spills).  The footer maps each attribute key to its
ordered page runs ``[start, end, offset, length, count]`` so a point
lookup seeks straight to the covering page without touching the rest
of the file.

Compaction: every checkpoint generation re-spills the *entire* cold
history (old cold pages stream back through the cache) into one fresh
segment file, and the previous generation's files are deleted only
after the new checkpoint is durable.  Crash-safety therefore needs no
new recovery machinery -- at every instant the newest durable
checkpoint's segment file is fully durable, and recovery verifies the
segment (magic, footer, every page CRC) before accepting the
checkpoint, falling back to the previous generation otherwise.

``REPRO_NO_SEGMENTS`` ablates the tier (house pattern: ``is_enabled``
/ ``set_enabled`` / ``disabled()``); checkpoints then inline every
history exactly as before this tier existed.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import struct
import zlib
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Callable, Iterator, NamedTuple

from repro import perf
from repro.database.pagecache import PAGE_CACHE
from repro.errors import SegmentError, UndefinedAtError
from repro.obs import spans as obs
from repro.temporal.instants import NOW, Now, validate_instant
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import (
    TemporalValue,
    _hashable,
)

SEGMENT_MAGIC = b"TCSEG001"
SEGMENT_FORMAT = "t-chimera-segment/1"
_HEADER_LEN = 8  # 4-byte LE length + 4-byte LE CRC-32, as in the WAL
_TRAILER_LEN = 8  # 8-byte LE footer offset

#: A history spills only once it holds at least this many pairs
#: (``REPRO_SEGMENT_MIN_PAIRS``); short histories stay fully resident.
SPILL_MIN_PAIRS = int(os.environ.get("REPRO_SEGMENT_MIN_PAIRS", "32"))
#: The newest pairs kept hot (``REPRO_SEGMENT_HOT_TAIL``); the open
#: pair, when present, is among them, so assign/close never fault.
HOT_TAIL_PAIRS = int(os.environ.get("REPRO_SEGMENT_HOT_TAIL", "8"))
#: Cold pairs per page frame (``REPRO_SEGMENT_PAGE_PAIRS``).
PAGE_PAIRS = int(os.environ.get("REPRO_SEGMENT_PAGE_PAIRS", "128"))

is_enabled: bool = os.environ.get("REPRO_NO_SEGMENTS", "").lower() not in (
    "1",
    "true",
    "yes",
)

_SPILLED_BYTES = perf.metric("segment.spilled_bytes")
_SPILLED_VALUES = perf.metric("segment.spilled_values")
_HYDRATIONS = perf.metric("segment.hydrations")

#: Distinguishes page-cache keys across store instances, so a fresh
#: store (new recovery, new trial, a replica) never hits pages cached
#: from an unrelated filesystem that happened to reuse a path string.
_STORE_IDS = itertools.count(1)


def set_enabled(enabled: bool) -> bool:
    """Toggle the cold-segment tier; returns the previous value."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(enabled)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Scoped ablation: ``with segments.disabled(): ...``"""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


# -- framing --------------------------------------------------------------------


def _frame(body: bytes) -> bytes:
    """Length + CRC-32 framing, byte-compatible with the WAL idiom."""
    return struct.pack("<II", len(body), zlib.crc32(body)) + body


def _unframe(raw: bytes, context: str) -> bytes:
    """Validate and strip one frame that must span *raw* exactly."""
    if len(raw) < _HEADER_LEN:
        raise SegmentError(f"{context}: truncated frame header")
    length, crc = struct.unpack_from("<II", raw)
    body = raw[_HEADER_LEN : _HEADER_LEN + length]
    if len(body) != length or _HEADER_LEN + length != len(raw):
        raise SegmentError(f"{context}: frame length mismatch")
    if zlib.crc32(body) != crc:
        raise SegmentError(f"{context}: frame CRC mismatch")
    return body


def _read_at(fs, path: str, offset: int, length: int) -> bytes:
    """Positional read, falling back to a full read for plain fs objects."""
    reader = getattr(fs, "read_at", None)
    if reader is not None:
        return reader(path, offset, length)
    return fs.read(path)[offset : offset + length]


# -- file naming ----------------------------------------------------------------


def segment_name(lsn: int) -> str:
    """The segment file for checkpoint generation *lsn*."""
    return f"segments-{lsn:012d}.seg"


def list_segments(fs, directory: str) -> list[str]:
    """Segment files (and leftover temporaries) in *directory*, sorted."""
    try:
        names = fs.listdir(directory)
    except (FileNotFoundError, KeyError):
        return []
    return sorted(
        name
        for name in names
        if name.startswith("segments-")
        and (name.endswith(".seg") or name.endswith(".seg.tmp"))
    )


class PageRun(NamedTuple):
    """One page's footer entry: the instants it covers and where it is."""

    start: int
    end: int
    offset: int
    length: int
    count: int


# -- reading --------------------------------------------------------------------


class SegmentStore:
    """Factory/cache of :class:`SegmentReader` bound to one directory.

    Stores are deliberately shared, never copied: the transaction
    deepcopy and the parallel fork both see the same immutable files.
    """

    def __init__(self, fs=None, directory: str = ".") -> None:
        if fs is None:
            from repro.faults.fs import RealFS

            fs = RealFS()
        self.fs = fs
        self.directory = str(directory)
        self.store_id = next(_STORE_IDS)
        self._readers: dict[str, SegmentReader] = {}

    def path(self, name: str) -> str:
        return f"{self.directory}/{name}"

    def reader(self, name: str) -> "SegmentReader":
        reader = self._readers.get(name)
        if reader is None:
            reader = self._readers[name] = SegmentReader(self, name)
        return reader

    def verify(self, name: str) -> None:
        """Full integrity walk: magic, trailer, footer, every page CRC.

        Raises :class:`SegmentError` on any corruption.  Recovery calls
        this before accepting a checkpoint that references the segment.
        """
        path = self.path(name)
        if not self.fs.exists(path):
            raise SegmentError(f"missing segment file {name}")
        data = self.fs.read(path)
        entries = _parse_footer(data, name)
        for key, runs in entries.items():
            for run in runs:
                if run.offset + run.length > len(data):
                    raise SegmentError(
                        f"{name}: page for {key!r} overruns the file"
                    )
                body = _unframe(
                    data[run.offset : run.offset + run.length],
                    f"{name} page@{run.offset}",
                )
                if len(json.loads(body)) != run.count:
                    raise SegmentError(
                        f"{name}: page@{run.offset} pair count mismatch"
                    )

    def __deepcopy__(self, memo) -> "SegmentStore":
        return self


def _parse_footer(data: bytes, name: str) -> dict[str, tuple[PageRun, ...]]:
    """The footer index of a whole segment file image."""
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise SegmentError(f"{name}: bad segment magic")
    floor = len(SEGMENT_MAGIC) + _HEADER_LEN + _TRAILER_LEN
    if len(data) < floor:
        raise SegmentError(f"{name}: segment file too short")
    (footer_offset,) = struct.unpack("<Q", data[-_TRAILER_LEN:])
    if not (
        len(SEGMENT_MAGIC)
        <= footer_offset
        <= len(data) - _TRAILER_LEN - _HEADER_LEN
    ):
        raise SegmentError(f"{name}: footer offset out of range")
    body = _unframe(
        data[footer_offset:-_TRAILER_LEN], f"{name} footer"
    )
    doc = json.loads(body)
    if doc.get("format") != SEGMENT_FORMAT:
        raise SegmentError(
            f"{name}: unsupported segment format {doc.get('format')!r}"
        )
    return {
        key: tuple(PageRun(*run) for run in runs)
        for key, runs in doc["entries"].items()
    }


class SegmentReader:
    """Lazy reads of one segment file: footer once, pages on demand."""

    def __init__(self, store: SegmentStore, name: str) -> None:
        self.store = store
        self.name = name
        self.path = store.path(name)
        self._entries: dict[str, tuple[PageRun, ...]] | None = None

    def _footer(self) -> dict[str, tuple[PageRun, ...]]:
        if self._entries is None:
            fs = self.store.fs
            size = fs.size(self.path)
            floor = len(SEGMENT_MAGIC) + _HEADER_LEN + _TRAILER_LEN
            if size < floor:
                raise SegmentError(f"{self.name}: segment file too short")
            magic = _read_at(fs, self.path, 0, len(SEGMENT_MAGIC))
            if magic != SEGMENT_MAGIC:
                raise SegmentError(f"{self.name}: bad segment magic")
            (footer_offset,) = struct.unpack(
                "<Q", _read_at(fs, self.path, size - _TRAILER_LEN, _TRAILER_LEN)
            )
            if not (
                len(SEGMENT_MAGIC)
                <= footer_offset
                <= size - _TRAILER_LEN - _HEADER_LEN
            ):
                raise SegmentError(f"{self.name}: footer offset out of range")
            body = _unframe(
                _read_at(
                    fs,
                    self.path,
                    footer_offset,
                    size - _TRAILER_LEN - footer_offset,
                ),
                f"{self.name} footer",
            )
            doc = json.loads(body)
            if doc.get("format") != SEGMENT_FORMAT:
                raise SegmentError(
                    f"{self.name}: unsupported segment format "
                    f"{doc.get('format')!r}"
                )
            self._entries = {
                key: tuple(PageRun(*run) for run in runs)
                for key, runs in doc["entries"].items()
            }
        return self._entries

    def runs_for(self, key: str) -> tuple[PageRun, ...]:
        runs = self._footer().get(key)
        if runs is None:
            raise SegmentError(
                f"{self.name}: no cold history for key {key!r}"
            )
        return runs

    def load(self, run: PageRun) -> tuple[list[int], list[list[Any]]]:
        """The decoded page for *run* as ``(starts, pairs)``.

        Served through the global page cache; a miss reads exactly the
        page's byte range and charges its encoded size to the budget.
        """
        return PAGE_CACHE.get(
            (self.store.store_id, self.name, run.offset),
            lambda: self._load_page(run),
        )

    def _load_page(
        self, run: PageRun
    ) -> tuple[int, tuple[list[int], list[list[Any]]]]:
        if obs.is_enabled:
            with obs.span("segment.load", file=self.name) as sp:
                page = self._read_page(run)
                sp.annotate(offset=run.offset, pairs=run.count)
                return page
        return self._read_page(run)

    def _read_page(
        self, run: PageRun
    ) -> tuple[int, tuple[list[int], list[list[Any]]]]:
        from repro.database.persistence import decode_value

        raw = _read_at(self.store.fs, self.path, run.offset, run.length)
        body = _unframe(raw, f"{self.name} page@{run.offset}")
        pairs = [
            [start, end, decode_value(value)]
            for start, end, value in json.loads(body)
        ]
        starts = [pair[0] for pair in pairs]
        return run.length, (starts, pairs)

    def __deepcopy__(self, memo) -> "SegmentReader":
        return self


# -- writing (checkpoint-time spill) --------------------------------------------


class SegmentWriter:
    """Accumulates one checkpoint generation's cold pages.

    ``database_to_json(db, segments=writer)`` calls :meth:`spill` per
    temporal attribute; :meth:`finalize` writes the segment file
    atomically (the caller does this *before* writing the checkpoint
    document); :meth:`apply_swaps` replaces the spilled in-memory
    histories with segment-backed values once the checkpoint is
    durable.
    """

    def __init__(self, fs, directory: str, lsn: int) -> None:
        self.fs = fs
        self.directory = str(directory)
        self.name = segment_name(lsn)
        self._chunks: list[bytes] = [SEGMENT_MAGIC]
        self._offset = len(SEGMENT_MAGIC)
        self._entries: dict[str, list[list[int]]] = {}
        # (container dict, attr name, hot (Interval, value) pairs,
        #  attr key, coalesce flag) per spilled value.
        self._swaps: list[tuple[dict, str, tuple, str, bool]] = []
        self.spilled_values = 0

    def spill(self, obj, kind: str, name: str, value: TemporalValue):
        """Spill *value* if eligible; returns its encoded checkpoint
        form (hot pairs + cold reference) or ``None`` to inline."""
        from repro.database.persistence import encode_value

        pairs = value.pairs()
        resegment = isinstance(value, SegmentedTemporalValue) and bool(
            value._runs
        )
        if not resegment and len(pairs) < max(
            SPILL_MIN_PAIRS, HOT_TAIL_PAIRS + 1
        ):
            return None
        split = len(pairs) - max(1, HOT_TAIL_PAIRS)
        if split < 1:
            return None
        cold, hot = pairs[:split], pairs[split:]
        if isinstance(cold[-1][0].end, Now):
            return None  # the open pair must stay hot
        key = f"{obj.oid.serial}:{obj.oid.hierarchy}:{kind}:{name}"
        runs: list[list[int]] = []
        for i in range(0, len(cold), max(1, PAGE_PAIRS)):
            chunk = cold[i : i + max(1, PAGE_PAIRS)]
            body = json.dumps(
                [
                    [interval.start, interval.end, encode_value(carried)]
                    for interval, carried in chunk
                ],
                sort_keys=True,
            ).encode("utf-8")
            frame = _frame(body)
            runs.append(
                [
                    chunk[0][0].start,
                    chunk[-1][0].end,
                    self._offset,
                    len(frame),
                    len(chunk),
                ]
            )
            self._chunks.append(frame)
            self._offset += len(frame)
        self._entries[key] = runs
        container = obj.value if kind == "v" else obj.retained
        self._swaps.append((container, name, hot, key, value._coalesce))
        self.spilled_values += 1
        return {
            "$kind": "temporal",
            "pairs": [
                {
                    "start": interval.start,
                    "end": "now"
                    if isinstance(interval.end, Now)
                    else interval.end,
                    "value": encode_value(carried),
                }
                for interval, carried in hot
            ],
            "cold": {
                "segment": self.name,
                "key": key,
                "count": len(cold),
            },
        }

    def finalize(self) -> str | None:
        """Write the segment file atomically; returns its name, or
        ``None`` when nothing spilled (no file is written)."""
        if not self._entries:
            return None
        footer = json.dumps(
            {"format": SEGMENT_FORMAT, "entries": self._entries},
            sort_keys=True,
        ).encode("utf-8")
        data = (
            b"".join(self._chunks)
            + _frame(footer)
            + struct.pack("<Q", self._offset)
        )
        if obs.is_enabled:
            with obs.span("segment.spill", file=self.name) as sp:
                self._write(data)
                sp.annotate(values=self.spilled_values, bytes=len(data))
        else:
            self._write(data)
        _SPILLED_BYTES.add(len(data))
        _SPILLED_VALUES.add(self.spilled_values)
        return self.name

    def _write(self, data: bytes) -> None:
        path = f"{self.directory}/{self.name}"
        tmp = path + ".tmp"
        self.fs.write(tmp, data)
        self.fs.fsync(tmp)
        self.fs.replace(tmp, path)
        self.fs.fsync_dir(self.directory)

    def apply_swaps(self, db) -> int:
        """Swap spilled in-memory histories for segment-backed values.

        Called only after the checkpoint referencing this segment is
        durable.  Returns the number of values swapped.
        """
        if not self._swaps:
            db.segment_values = count_segment_values(db)
            return 0
        store = SegmentStore(self.fs, self.directory)
        reader = store.reader(self.name)
        for container, name, hot, key, coalesce in self._swaps:
            container[name] = SegmentedTemporalValue(
                [
                    [interval.start, interval.end, carried]
                    for interval, carried in hot
                ],
                reader.runs_for(key),
                reader,
                coalesce=coalesce,
            )
        db.segment_values = count_segment_values(db)
        return len(self._swaps)


def count_segment_values(db) -> int:
    """How many live histories are currently segment-backed."""
    total = 0
    for obj in db._objects.values():
        for value in obj.value.values():
            if isinstance(value, SegmentedTemporalValue) and value._runs:
                total += 1
        for value in obj.retained.values():
            if isinstance(value, SegmentedTemporalValue) and value._runs:
                total += 1
    return total


# -- the segment-backed temporal value ------------------------------------------

#: Direct access to the base class's ``_pairs`` slot, bypassing the
#: hydrating property the subclass shadows it with.
_PAIRS_SLOT = TemporalValue.__dict__["_pairs"]


class SegmentedTemporalValue(TemporalValue):
    """A :class:`TemporalValue` whose cold prefix lives in a segment.

    The base slot holds only the **hot tail**; ``_runs`` index the cold
    pages and ``_reader`` faults them in through the page cache.  The
    hot-path methods (``at``/``get``/``assign``/``close``/``locate``)
    operate on the tail via :meth:`_tail`; full-history reads stream
    cold pages without materializing; anything else falls back to
    transparent **hydration** -- the shadowed ``_pairs`` property
    splices the cold pairs back into memory, after which the value
    behaves exactly like a plain one.
    """

    __slots__ = ("_runs", "_run_starts", "_reader")

    def __init__(
        self,
        hot_pairs: list[list[Any]],
        runs: tuple[PageRun, ...],
        reader: SegmentReader,
        coalesce: bool = True,
    ) -> None:
        self._runs = tuple(runs)
        self._run_starts = [run.start for run in self._runs]
        self._reader = reader
        _PAIRS_SLOT.__set__(self, [list(pair) for pair in hot_pairs])
        self._coalesce = coalesce
        self._starts_cache = None

    # -- hydration fallback ------------------------------------------------

    @property
    def _pairs(self) -> list[list[Any]]:
        if self._runs:
            self._hydrate()
        return _PAIRS_SLOT.__get__(self)

    @_pairs.setter
    def _pairs(self, value: list[list[Any]]) -> None:
        _PAIRS_SLOT.__set__(self, value)

    def _tail(self) -> list[list[Any]]:
        return _PAIRS_SLOT.__get__(self)

    def _hydrate(self) -> None:
        """Splice the cold pairs back into memory (correctness fallback
        for operations with no streaming override, e.g. ``put``)."""
        cold = [list(pair) for pair in self._iter_cold()]
        _PAIRS_SLOT.__set__(self, cold + _PAIRS_SLOT.__get__(self))
        self._runs = ()
        self._run_starts = []
        self._reader = None
        self._starts_invalidate()
        _HYDRATIONS.add(1)

    def _iter_cold(self) -> Iterator[list[Any]]:
        """Cold ``[start, end, value]`` triples in time order.

        Yields the page cache's own lists -- callers must copy before
        mutating.
        """
        for run in self._runs:
            _starts, pairs = self._reader.load(run)
            yield from pairs

    def _all_pairs(self) -> Iterator[list[Any]]:
        yield from self._iter_cold()
        yield from self._tail()

    # -- point reads -------------------------------------------------------

    def _cold_lookup(self, t: int, default: Any) -> Any:
        idx = bisect_right(self._run_starts, t) - 1
        if idx < 0:
            return default
        run = self._runs[idx]
        if t > run.end:
            return default
        starts, pairs = self._reader.load(run)
        j = bisect_right(starts, t) - 1
        if j < 0:
            return default
        start, end, value = pairs[j]
        return value if start <= t <= end else default

    def defined_at(self, t: int) -> bool:
        validate_instant(t)
        if self._runs and t <= self._runs[-1].end:
            return self._cold_lookup(t, _MISS) is not _MISS
        return self._locate(t) is not None

    def at(self, t: int) -> Any:
        validate_instant(t)
        if self._runs and t <= self._runs[-1].end:
            value = self._cold_lookup(t, _MISS)
            if value is _MISS:
                raise UndefinedAtError(
                    f"temporal value undefined at instant {t}"
                )
            return value
        idx = self._locate(t)
        if idx is None:
            raise UndefinedAtError(
                f"temporal value undefined at instant {t}"
            )
        return self._tail()[idx][2]

    def get(self, t: int, default: Any = None) -> Any:
        validate_instant(t)
        if self._runs and t <= self._runs[-1].end:
            value = self._cold_lookup(t, _MISS)
            return default if value is _MISS else value
        idx = self._locate(t)
        return default if idx is None else self._tail()[idx][2]

    # -- full-history reads (streaming, no hydration) ----------------------

    def pairs(self) -> tuple[tuple[Interval, Any], ...]:
        return tuple(
            (Interval(start, end), value)
            for start, end, value in self._all_pairs()
        )

    def resolved_pairs(self, now: int) -> tuple[tuple[Interval, Any], ...]:
        result = []
        for start, end, value in self._all_pairs():
            interval = Interval(start, end).resolve(now)
            if not interval.is_empty:
                result.append((interval, value))
        return tuple(result)

    def domain(self, now: int | None = None) -> IntervalSet:
        return IntervalSet(
            (Interval(start, end) for start, end, _ in self._all_pairs()),
            now=now,
        )

    def values(self) -> Iterator[Any]:
        return iter(pair[2] for pair in self._all_pairs())

    def when(
        self, predicate: Callable[[Any], bool], now: int | None = None
    ) -> IntervalSet:
        hits = [
            Interval(start, end)
            for start, end, value in self._all_pairs()
            if predicate(value)
        ]
        return IntervalSet(hits, now=now)

    def is_empty(self) -> bool:
        return not self._runs and not self._tail()

    def first_instant(self) -> int:
        if self._runs:
            return self._runs[0].start
        return super().first_instant()

    def last_instant(self, now: int | None = None) -> int:
        if self._tail():
            return super().last_instant(now)
        if self._runs:
            return self._runs[-1].end
        return super().last_instant(now)  # raises UndefinedAtError

    def is_constant(self) -> bool:
        values = self.values()
        head = next(values, _MISS)
        if head is _MISS:
            return True
        return all(value == head for value in values)

    def __len__(self) -> int:
        return sum(run.count for run in self._runs) + len(self._tail())

    def copy(self) -> TemporalValue:
        if not self._runs:
            return super().copy()
        clone = SegmentedTemporalValue(
            [list(pair) for pair in self._tail()],
            self._runs,
            self._reader,
            coalesce=self._coalesce,
        )
        return clone

    def restrict(
        self, allowed: IntervalSet, now: int | None = None
    ) -> TemporalValue:
        result = TemporalValue(coalesce=self._coalesce)
        for start, end, value in self._all_pairs():
            interval = Interval(start, end).resolve(now)
            if interval.is_empty:
                continue
            piece_set = IntervalSet([interval]) & allowed
            for piece in piece_set.intervals:
                result.put(piece, value)
        return result

    def map(self, fn: Callable[[Any], Any]) -> TemporalValue:
        result = TemporalValue(coalesce=self._coalesce)
        for start, end, value in self._all_pairs():
            result._pairs.append([start, end, fn(value)])
        return result

    def coalesced(self) -> TemporalValue:
        result = TemporalValue(coalesce=True)
        for start, end, value in self._all_pairs():
            result._pairs.append([start, end, value])
            result._maybe_merge_backward(len(result._pairs) - 1)
        return result

    # -- mutation ----------------------------------------------------------

    def assign(self, t: int, value: Any) -> None:
        if self._runs and not self._tail():
            # Only the cold prefix remains; the base overlap check needs
            # the recorded end, so rematerialize first.
            self._hydrate()
        super().assign(t, value)

    def put(
        self,
        interval: Interval,
        value: Any,
        overwrite: bool = False,
        now: int | None = None,
    ) -> None:
        # Retroactive insertion rewrites arbitrary history: hydrate.
        if self._runs:
            self._hydrate()
        super().put(interval, value, overwrite=overwrite, now=now)

    # -- comparison --------------------------------------------------------

    def _materialized(self) -> list[list[Any]]:
        return [[start, end, value] for start, end, value in self._all_pairs()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalValue):
            return NotImplemented
        mine = (
            self.coalesced()._pairs
            if not self._coalesce
            else self._materialized()
        )
        if isinstance(other, SegmentedTemporalValue):
            theirs = (
                other.coalesced()._pairs
                if not other._coalesce
                else other._materialized()
            )
        else:
            theirs = (
                other.coalesced()._pairs
                if not other._coalesce
                else other._pairs
            )
        return mine == theirs

    def __hash__(self) -> int:
        source = (
            self._materialized()
            if self._coalesce
            else self.coalesced()._pairs
        )
        return hash(
            tuple(
                (start, end if not isinstance(end, Now) else NOW, _hashable(v))
                for start, end, v in source
            )
        )

    def __deepcopy__(self, memo) -> "SegmentedTemporalValue":
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        clone._runs = self._runs
        clone._run_starts = self._run_starts
        clone._reader = self._reader  # readers are shared, never copied
        _PAIRS_SLOT.__set__(
            clone, copy.deepcopy(_PAIRS_SLOT.__get__(self), memo)
        )
        clone._coalesce = self._coalesce
        clone._starts_cache = None
        return clone


_MISS = object()
