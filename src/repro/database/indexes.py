"""Temporal indexes: stabbing queries over many intervals.

The engine's built-in structures answer "which instants for this one
oid/attribute" queries directly (per-oid interval lists, bisect over
temporal-value pairs).  The complementary access path -- "which of
these many intervals contain instant t" (a *stabbing* query), used by
extent-at-t over long-lived populations and by the query evaluator's
AT scope -- is served by :class:`IntervalStabbingIndex`.

Implementation: a static interval tree in the classic centered form
(Edelsbrunner): each node stores the intervals containing its center
instant, sorted by start and by end, so a stabbing query descends one
root-to-leaf path collecting prefix hits -- O(log n + k).  The index is
rebuilt on demand (temporal data is append-mostly; the engine marks it
stale on mutation).  Bench E6 ablates it against the linear scan.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.errors import InvalidIntervalError
from repro.temporal.instants import Now
from repro.temporal.intervals import Interval

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: int) -> None:
        self.center = center
        self.by_start: list[tuple[int, int, T]] = []  # (start, end, tag)
        self.by_end: list[tuple[int, int, T]] = []
        self.left: "_Node[T] | None" = None
        self.right: "_Node[T] | None" = None


class IntervalStabbingIndex(Generic[T]):
    """A static centered interval tree over tagged concrete intervals.

    Build with ``(interval, tag)`` pairs; query with :meth:`stab` (all
    tags whose interval contains t) and :meth:`overlapping` (all tags
    whose interval intersects a probe interval).  Intervals must be
    concrete (resolve moving endpoints first).
    """

    def __init__(
        self, entries: Iterable[tuple[Interval, T]] = ()
    ) -> None:
        items: list[tuple[int, int, T]] = []
        for interval, tag in entries:
            if interval.is_empty:
                continue
            end = interval.end
            if isinstance(end, Now):
                raise InvalidIntervalError(
                    "index intervals must be concrete; resolve moving "
                    "endpoints against the clock first"
                )
            items.append((interval.start, end, tag))
        self._size = len(items)
        self._root = self._build(items)

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _build(items: list[tuple[int, int, T]]) -> "_Node[T] | None":
        if not items:
            return None
        endpoints = sorted(
            {start for start, _e, _t in items}
            | {end for _s, end, _t in items}
        )
        center = endpoints[len(endpoints) // 2]
        node: _Node[T] = _Node(center)
        lefts: list[tuple[int, int, T]] = []
        rights: list[tuple[int, int, T]] = []
        for item in items:
            start, end, _tag = item
            if end < center:
                lefts.append(item)
            elif start > center:
                rights.append(item)
            else:
                node.by_start.append(item)
        node.by_start.sort(key=lambda item: item[0])
        node.by_end = sorted(node.by_start, key=lambda item: -item[1])
        node.left = IntervalStabbingIndex._build(lefts)
        node.right = IntervalStabbingIndex._build(rights)
        return node

    def stab(self, t: int) -> list[T]:
        """All tags whose interval contains instant *t*."""
        hits: list[T] = []
        node = self._root
        while node is not None:
            if t < node.center:
                for start, _end, tag in node.by_start:
                    if start > t:
                        break
                    hits.append(tag)
                node = node.left
            elif t > node.center:
                for _start, end, tag in node.by_end:
                    if end < t:
                        break
                    hits.append(tag)
                node = node.right
            else:
                hits.extend(tag for _s, _e, tag in node.by_start)
                break
        return hits

    def overlapping(self, probe: Interval) -> list[T]:
        """All tags whose interval shares an instant with *probe*."""
        if probe.is_empty:
            return []
        end = probe.end
        if isinstance(end, Now):
            raise InvalidIntervalError("probe must be concrete")
        hits: list[T] = []
        self._collect_overlaps(self._root, probe.start, end, hits)
        return hits

    @staticmethod
    def _collect_overlaps(
        node: "_Node[T] | None", lo: int, hi: int, hits: list[T]
    ) -> None:
        if node is None:
            return
        for start, end, tag in node.by_start:
            if start > hi:
                break
            if end >= lo:
                hits.append(tag)
        if lo < node.center:
            IntervalStabbingIndex._collect_overlaps(
                node.left, lo, hi, hits
            )
        if hi > node.center:
            IntervalStabbingIndex._collect_overlaps(
                node.right, lo, hi, hits
            )

    def instants_covered(self) -> int:
        """Total coverage (with multiplicity) -- a size diagnostic."""
        total = 0
        for start, end, _tag in self._items():
            total += end - start + 1
        return total

    def _items(self) -> Iterator[tuple[int, int, T]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield from node.by_start
            stack.append(node.left)
            stack.append(node.right)


def extent_index(db, class_name: str) -> IntervalStabbingIndex:
    """Build a stabbing index over one class's membership intervals:
    ``index.stab(t)`` returns the oids of ``pi(class_name, t)``."""
    cls = db.get_class(class_name)
    entries = []
    for oid in cls.history.ever_members():
        for interval in cls.history.member_times(oid, db.now).intervals:
            entries.append((interval, oid))
    return IntervalStabbingIndex(entries)
