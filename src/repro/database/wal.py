"""The write-ahead journal: crash-safe durability for the engine.

Every committed operation of a journaled :class:`TemporalDatabase` is
serialized to an append-only journal file before the caller regains
control.  The journal, together with periodic checkpoints (full
:func:`~repro.database.persistence.database_to_json` snapshots), makes
the database recoverable after a crash: load the last good checkpoint,
replay the journal suffix (:mod:`repro.database.recovery`).

Record framing
--------------
The file starts with the 8-byte magic ``TCWAL001``.  Each record is::

    [4-byte LE payload length][4-byte LE CRC-32 of payload][payload]

where the payload is a UTF-8 JSON object carrying a monotonically
increasing ``lsn`` (log sequence number) plus the operation.  A record
whose length prefix runs past the end of the file, or whose CRC does
not match, marks the *end of the valid prefix*: everything before it
replays, everything from it on is a torn/corrupt tail and is dropped
by recovery (with counts in the :class:`RecoveryReport`).

Record kinds
------------
* data operations, mirrored off the :class:`~repro.database.events.Event`
  stream: ``create``, ``update``, ``migrate``, ``delete``, ``correct``;
* schema operations: ``define_class``, ``add_attribute``,
  ``remove_attribute``, ``drop_class``;
* ``tick`` (clock advancement) and ``genesis`` (database creation);
* transaction markers ``begin``/``commit``: records between a ``begin``
  with no matching ``commit`` are an *uncommitted suffix* and are
  dropped by recovery; :meth:`Journal.abort` physically truncates them.
  Batches (:meth:`Journal.begin_batch`) reuse the same markers, tagged
  ``"batch": true``, so a torn group-commit write is exactly a trailing
  open transaction to recovery: the whole batch drops, never a prefix.

Durability contract
-------------------
Outside a transaction every append is flushed and fsynced before the
operation returns (``sync="always"``); inside a transaction, records
are written eagerly but the fsync barrier is :meth:`commit` -- commit
*is* the flush barrier.  During a batch (group commit) records are
framed into an in-memory buffer and hit the disk as one append + one
fsync at :meth:`commit_batch` -- nothing of the batch is durable, or
even visible to the OS, before that barrier; :meth:`abort_batch` is a
pure buffer discard.  A batch opened inside a transaction writes no
markers of its own (recovery treats a second ``begin`` as a dangling
earlier transaction) and defers its barrier to the enclosing
:meth:`commit`.  Checkpoints are atomic: write to a temp file,
fsync, rename, fsync the directory, and only then truncate the
journal; a crash anywhere in that sequence leaves either the old
checkpoint plus the full journal or the new checkpoint plus a journal
whose already-covered records recovery skips by LSN.

Not journaled (documented limitations, mirroring persistence): method
and c-method *bodies* (Python callables), and c-attribute mutations
performed inside c-method bodies via ``set_c_attr``.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro import perf
from repro.database.events import Event, EventKind
from repro.errors import JournalError
from repro.faults.fs import RealFS
from repro.obs import spans as obs

MAGIC = b"TCWAL001"
_HEADER_LEN = 8  # 4-byte length + 4-byte crc32
CHECKPOINT_FORMAT = "t-chimera-checkpoint/1"

_RECORDS = perf.metric("wal.records")
_SYNCS = perf.metric("wal.syncs")
_COMMITS = perf.metric("wal.commits")
_ABORTS = perf.metric("wal.aborts")
_CHECKPOINTS = perf.metric("wal.checkpoints")


# -- framing -------------------------------------------------------------------


def frame_record(payload: dict[str, Any]) -> bytes:
    """Length-prefix and checksum one JSON payload."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return (
        len(body).to_bytes(4, "little")
        + zlib.crc32(body).to_bytes(4, "little")
        + body
    )


@dataclass
class TailStatus:
    """What the frame scanner found at the end of the journal."""

    #: byte offset of the first invalid/incomplete frame (== file size
    #: when the journal is fully valid).
    valid_end: int
    #: bytes beyond the valid prefix (torn or corrupt).
    dropped_bytes: int
    #: why the scan stopped, or None when the whole file parsed.
    error: str | None = None

    @property
    def clean(self) -> bool:
        return self.dropped_bytes == 0 and self.error is None


@dataclass(frozen=True)
class Frame:
    """One decoded journal frame, with its physical position.

    ``raw`` carries the frame exactly as it sits on disk (header +
    payload), so a log shipper can forward frames verbatim and the
    CRC travels with them end-to-end.
    """

    lsn: int
    #: byte offset of the frame header within the stream.
    offset: int
    #: byte offset just past the frame body.
    end: int
    record: dict[str, Any]
    raw: bytes

    @property
    def kind(self) -> str | None:
        return self.record.get("kind")

    @property
    def is_marker(self) -> bool:
        return self.record.get("kind") in ("begin", "commit")


def iter_frame_bytes(data: bytes, offset: int = 0):
    """Yield :class:`Frame` objects from a raw frame run.

    The run starts at *offset* and carries no magic header (shipped
    deliveries, journal suffixes).  Parsing stops at the first torn or
    corrupt frame; the generator's ``StopIteration`` value is the
    :class:`TailStatus` (consumed by :func:`scan_frames`; plain ``for``
    loops just see the valid prefix).  Never raises on corrupt input --
    graceful degradation is the whole point.
    """
    total = len(data)
    while offset < total:
        if offset + _HEADER_LEN > total:
            return TailStatus(
                offset, total - offset, "truncated record header"
            )
        length = int.from_bytes(data[offset:offset + 4], "little")
        checksum = int.from_bytes(data[offset + 4:offset + 8], "little")
        body_start = offset + _HEADER_LEN
        body_end = body_start + length
        if body_end > total:
            return TailStatus(
                offset, total - offset, "truncated record body"
            )
        body = data[body_start:body_end]
        if zlib.crc32(body) != checksum:
            return TailStatus(
                offset, total - offset, "checksum mismatch"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return TailStatus(
                offset, total - offset, "undecodable record payload"
            )
        if not isinstance(payload, dict) or "lsn" not in payload:
            return TailStatus(
                offset, total - offset, "malformed record payload"
            )
        yield Frame(
            lsn=int(payload["lsn"]),
            offset=offset,
            end=body_end,
            record=payload,
            raw=bytes(data[offset:body_end]),
        )
        offset = body_end
    return TailStatus(offset, 0)


def _frames_of(data: bytes):
    """Frame generator over a full journal byte string (magic-checked)."""
    if not data.startswith(MAGIC):
        return TailStatus(0, len(data), "bad or missing magic")
    return (yield from iter_frame_bytes(data, len(MAGIC)))


def iter_frames(
    path: str | os.PathLike[str],
    fs: Any = None,
    start_lsn: int = 0,
) -> Iterator[Frame]:
    """Yield the journal's valid-prefix frames, in LSN order.

    The public frame reader shared by recovery, the LSN-resume scan in
    :meth:`Journal.__init__`, and the replication log shipper
    (:mod:`repro.replication`).  Frames with ``lsn < start_lsn`` are
    skipped; a torn or corrupt tail silently ends the iteration
    (callers that need the :class:`TailStatus` use :func:`scan_frames`).
    """
    fs = fs if fs is not None else RealFS()
    gen = _frames_of(fs.read(str(path)))
    while True:
        try:
            frame = next(gen)
        except StopIteration:
            return
        if frame.lsn >= start_lsn:
            yield frame


def scan_frames(data: bytes) -> tuple[list[dict[str, Any]], TailStatus]:
    """Parse the longest valid prefix of a journal byte string.

    Returns the decoded payloads and a :class:`TailStatus` describing
    where (and why) parsing stopped.  Built on the same frame generator
    as :func:`iter_frames`.
    """
    records: list[dict[str, Any]] = []
    gen = _frames_of(data)
    while True:
        try:
            frame = next(gen)
        except StopIteration as stop:
            return records, stop.value
        records.append(frame.record)


def drop_uncommitted(
    records: list[dict[str, Any]],
) -> tuple[list[dict[str, Any]], int, bool]:
    """Strip a trailing open transaction (``begin`` with no ``commit``).

    Returns the committed records (markers removed), the number of data
    records dropped as uncommitted, and whether the stream ended inside
    an open transaction at all.  The boolean matters independently of
    the count: a bare dangling ``begin`` drops zero data records but
    still leaves an open-transaction marker in the file that callers
    must physically truncate before appending.
    """
    committed: list[dict[str, Any]] = []
    staged: list[dict[str, Any]] | None = None
    for record in records:
        kind = record.get("kind")
        if kind == "begin":
            # A dangling earlier begin (no commit, then more autocommit
            # records) cannot occur in a well-formed journal; be
            # conservative and drop whatever was staged.
            staged = []
        elif kind == "commit":
            if staged is not None:
                committed.extend(staged)
            staged = None
        elif staged is not None:
            staged.append(record)
        else:
            committed.append(record)
    if staged is None:
        return committed, 0, False
    return committed, len(staged), True


# -- the journal ---------------------------------------------------------------


class Journal:
    """An append-only, CRC-framed operation log on an injectable FS.

    ``sync`` policy: ``"always"`` (default) fsyncs every autocommitted
    record; ``"commit"`` fsyncs only at transaction commit and
    checkpoint; ``"never"`` leaves syncing to the OS (benchmarks only).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        fs: Any = None,
        sync: str = "always",
    ) -> None:
        if sync not in ("always", "commit", "never"):
            raise JournalError(f"unknown sync policy {sync!r}")
        self.path = str(path)
        self.directory = os.path.dirname(self.path) or "."
        self.fs = fs if fs is not None else RealFS()
        self.sync = sync
        # Policy checks hoisted out of the per-record hot loop: append
        # runs once per operation during ingest.
        self._sync_on_append = sync == "always"
        self._sync_enabled = sync != "never"
        self._next_lsn = 1
        self._txn_offset: int | None = None
        self._txn_lsn: int | None = None
        self._batch_buffer: bytearray | None = None
        self._batch_lsn: int | None = None
        self._batch_marked = False
        self._batch_records = 0
        if not self.fs.exists(self.path):
            self.fs.write(self.path, MAGIC)
            self._fsync()
        else:
            # Resume the LSN sequence past the existing valid prefix so
            # a bare ``Journal(path)`` on a pre-existing file never
            # mints duplicate LSNs (duplicates would collide with the
            # ``lsn <= checkpoint_lsn`` skip filter during recovery).
            for frame in iter_frames(self.path, fs=self.fs):
                if frame.lsn >= self._next_lsn:
                    self._next_lsn = frame.lsn + 1

    # -- positioning ----------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record."""
        return self._next_lsn - 1

    def set_next_lsn(self, lsn: int) -> None:
        """Position the LSN counter (used after recovery/checkpoint load)."""
        self._next_lsn = int(lsn)

    @property
    def in_transaction(self) -> bool:
        return self._txn_offset is not None

    @property
    def in_batch(self) -> bool:
        return self._batch_buffer is not None

    def is_empty(self) -> bool:
        return self.fs.size(self.path) <= len(MAGIC)

    # -- appending ------------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Append one record; returns its LSN.

        Outside a transaction the record is durable (fsynced) before
        this returns under the ``"always"`` policy; inside one, the
        fsync barrier is :meth:`commit`.  While a batch is open the
        record only lands in the group-commit buffer.
        """
        lsn = self._next_lsn
        record = dict(payload)
        record["lsn"] = lsn
        data = frame_record(record)
        buffer = self._batch_buffer
        if buffer is not None:
            buffer += data
            self._batch_records += 1
        elif obs.is_enabled:
            # Only the actual write is traced -- a batch-buffered append
            # is a memory copy and stays span-free.
            with obs.span(
                "wal.append", record=record.get("kind"), bytes=len(data)
            ):
                self.fs.append(self.path, data)
                if self._txn_offset is None and self._sync_on_append:
                    self._fsync()
        else:
            self.fs.append(self.path, data)
            if self._txn_offset is None and self._sync_on_append:
                self._fsync()
        self._next_lsn = lsn + 1
        _RECORDS.add()
        return lsn

    def _fsync(self) -> None:
        if not self._sync_enabled:
            return
        if obs.is_enabled:
            with obs.span("wal.fsync"):
                self.fs.fsync(self.path)
        else:
            self.fs.fsync(self.path)
        _SYNCS.add()

    # -- transactions ----------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction scope: subsequent records are not durable
        until :meth:`commit`, and :meth:`abort` erases them."""
        if self._txn_offset is not None:
            raise JournalError("journal transaction already open")
        if self._batch_buffer is not None:
            # The begin marker would land in the batch buffer and the
            # transaction offset would ignore the buffered run; the
            # legal nesting is transaction-around-batch, not inside.
            raise JournalError(
                "cannot open a transaction inside a journal batch"
            )
        self._txn_offset = self.fs.size(self.path)
        self._txn_lsn = self._next_lsn
        self.append({"kind": "begin"})

    def commit(self) -> None:
        """Write the commit marker and fsync -- the flush barrier."""
        if self._txn_offset is None:
            raise JournalError("no journal transaction to commit")
        if self._batch_buffer is not None:
            raise JournalError(
                "cannot commit a transaction while a journal batch is open"
            )
        self.append({"kind": "commit"})
        self._txn_offset = None
        self._txn_lsn = None
        self._fsync()
        _COMMITS.add()

    def abort(self) -> None:
        """Physically truncate the uncommitted suffix."""
        if self._txn_offset is None:
            raise JournalError("no journal transaction to abort")
        if self._batch_buffer is not None:
            # Rolling back through a still-open batch: the buffered
            # records never reached the disk, so dropping the buffer
            # and truncating to the transaction offset erases the
            # whole batch along with the rest of the suffix.
            self._discard_batch()
        self.fs.truncate(self.path, self._txn_offset)
        self._next_lsn = self._txn_lsn
        self._txn_offset = None
        self._txn_lsn = None
        _ABORTS.add()

    # -- batches (group commit) ------------------------------------------------

    def begin_batch(self) -> None:
        """Start buffering appends for one group-commit flush.

        Outside a transaction the batch is bracketed with
        ``begin``/``commit`` markers (tagged ``"batch": true``) so that
        a crash during the flush leaves, at worst, a trailing open
        transaction that recovery drops wholesale -- never a partial
        batch.  Inside a transaction no markers are written (recovery
        treats a second ``begin`` as a dangling earlier transaction and
        drops staged records); the enclosing commit/abort is the
        durability boundary.
        """
        if self._batch_buffer is not None:
            raise JournalError("journal batch already open")
        self._batch_lsn = self._next_lsn
        self._batch_buffer = bytearray()
        self._batch_marked = self._txn_offset is None
        if self._batch_marked:
            self.append({"kind": "begin", "batch": True})
        self._batch_records = 0

    def commit_batch(self) -> int:
        """Flush the buffered run: one append, one fsync barrier.

        Returns the number of data records flushed.  An empty batch is
        discarded without touching the disk (the LSN range is reused).
        Inside a transaction the flush is a plain append -- the fsync
        barrier stays the enclosing :meth:`commit`.
        """
        if self._batch_buffer is None:
            raise JournalError("no journal batch to commit")
        count = self._batch_records
        if count == 0:
            self._discard_batch()
            return 0
        if self._batch_marked:
            self.append({"kind": "commit", "batch": True})
        buffer = self._batch_buffer
        self._batch_buffer = None
        self._batch_lsn = None
        self._batch_records = 0
        with obs.span("wal.append", record="batch", records=count):
            self.fs.append(self.path, bytes(buffer))
            if self._txn_offset is None:
                self._fsync()
                _COMMITS.add()
        return count

    def abort_batch(self) -> None:
        """Discard the buffered batch -- nothing reached the disk."""
        if self._batch_buffer is None:
            raise JournalError("no journal batch to abort")
        self._discard_batch()
        _ABORTS.add()

    def _discard_batch(self) -> None:
        self._next_lsn = self._batch_lsn
        self._batch_buffer = None
        self._batch_lsn = None
        self._batch_records = 0

    # -- reading ----------------------------------------------------------------

    def read_records(self) -> tuple[list[dict[str, Any]], TailStatus]:
        """Scan the journal file (longest valid prefix semantics)."""
        return scan_frames(self.fs.read(self.path))

    def truncate_tail(self, valid_end: int) -> None:
        """Cut a corrupt tail off at *valid_end* (post-salvage repair)."""
        self.fs.truncate(self.path, max(valid_end, len(MAGIC)))
        self._fsync()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, db: Any) -> str:
        """Atomically snapshot *db* and truncate the journal.

        Sequence: serialize, write ``checkpoint-<lsn>.json.tmp``,
        fsync, rename into place, fsync the directory, delete older
        checkpoints, truncate the journal.  A crash between any two
        steps is recoverable: the old checkpoint is removed only after
        the new one is durable, and journal records already covered by
        the new checkpoint are skipped by LSN during replay.
        """
        if self._txn_offset is not None:
            raise JournalError(
                "cannot checkpoint inside an open transaction"
            )
        if self._batch_buffer is not None:
            raise JournalError("cannot checkpoint inside an open batch")
        lsn = self.last_lsn
        with obs.span("wal.checkpoint", lsn=lsn):
            return self._write_checkpoint(db, lsn)

    def _write_checkpoint(self, db: Any, lsn: int) -> str:
        from repro.database import segments as seg
        from repro.database.persistence import database_to_json

        # Spill cold history first: the segment file must be durable
        # before any checkpoint document that references it exists.
        # Every already-segmented value is re-spilled (compacted) into
        # this generation's file, so after the new checkpoint lands no
        # live value references an older segment file and the old
        # generation can be deleted.
        writer = (
            seg.SegmentWriter(self.fs, self.directory, lsn)
            if seg.is_enabled and db is not None
            else None
        )
        doc = {
            "format": CHECKPOINT_FORMAT,
            "lsn": lsn,
            "database": json.loads(database_to_json(db, segments=writer)),
        }
        seg_name = writer.finalize() if writer is not None else None
        if seg_name is not None:
            doc["segments"] = seg_name
        data = json.dumps(doc, sort_keys=True).encode("utf-8")
        final = os.path.join(self.directory, checkpoint_name(lsn))
        tmp = final + ".tmp"
        self.fs.write(tmp, data)
        self.fs.fsync(tmp)
        self.fs.replace(tmp, final)
        self.fs.fsync_dir(self.directory)
        for name in list_checkpoints(self.fs, self.directory):
            if checkpoint_lsn(name) < lsn:
                self.fs.remove(os.path.join(self.directory, name))
        if writer is not None:
            # Older generations and stray temporaries are unreferenced
            # now that the new checkpoint is durable.
            for name in seg.list_segments(self.fs, self.directory):
                if name != seg_name:
                    self.fs.remove(os.path.join(self.directory, name))
        self.fs.fsync_dir(self.directory)
        self.fs.truncate(self.path, len(MAGIC))
        self.fs.fsync(self.path)
        if writer is not None:
            writer.apply_swaps(db)
        _CHECKPOINTS.add()
        return final


# -- checkpoint naming ----------------------------------------------------------


def checkpoint_name(lsn: int) -> str:
    return f"checkpoint-{lsn:012d}.json"


def checkpoint_lsn(name: str) -> int:
    """The LSN encoded in a checkpoint file name (-1 when malformed)."""
    if not (name.startswith("checkpoint-") and name.endswith(".json")):
        return -1
    try:
        return int(name[len("checkpoint-"):-len(".json")])
    except ValueError:
        return -1


def list_checkpoints(fs: Any, directory: str) -> list[str]:
    """Checkpoint file names in *directory*, oldest first."""
    try:
        names = fs.listdir(directory)
    except (FileNotFoundError, KeyError):
        return []
    return sorted(
        (n for n in names if checkpoint_lsn(n) >= 0), key=checkpoint_lsn
    )


# -- event -> record encoding ----------------------------------------------------


def record_for_event(event: Event) -> dict[str, Any]:
    """The journal payload replaying one committed data operation."""
    from repro.database.persistence import encode_value

    record: dict[str, Any] = {
        "kind": event.kind.value,
        "at": event.at,
        "oid": encode_value(event.oid),
        "class": event.class_name,
    }
    if event.kind is EventKind.CREATE:
        record["args"] = {
            name: encode_value(value)
            for name, value in (event.payload or {}).items()
        }
    elif event.kind is EventKind.UPDATE:
        record["attribute"] = event.attribute
        record["value"] = encode_value(event.new_value)
    elif event.kind is EventKind.MIGRATE:
        record["from"] = event.from_class
        record["args"] = {
            name: encode_value(value)
            for name, value in (event.payload or {}).items()
        }
    elif event.kind is EventKind.CORRECT:
        record["attribute"] = event.attribute
        record["window"] = list(event.window)
        record["value"] = encode_value(event.new_value)
    elif event.kind is EventKind.DELETE:
        record["force"] = bool(event.payload)
    return record


def iter_data_records(
    records: list[dict[str, Any]],
) -> Iterator[dict[str, Any]]:
    """The records that mutate state (markers filtered out)."""
    for record in records:
        if record.get("kind") not in ("begin", "commit"):
            yield record
