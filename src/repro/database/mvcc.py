"""MVCC read snapshots: queries that never block writers.

A :class:`ReadView` pins the database state at acquisition time -- the
same ``(now, cache generation, op count)`` version vector the caches
and the scatter-gather pool already validate against
(:meth:`TemporalDatabase._state_version`) -- and stays consistent while
writers proceed.  The mechanism is writer-side copy-on-write: the
mutation entry points call :meth:`MVCCManager.before_object_change` /
:meth:`before_class_change` *before* touching a structure, and when any
open view still needs the pre-image, the manager deep-copies it into a
versioned overlay.  Readers therefore pay nothing; writers pay one
deep copy per (object|class, open-view generation) -- zero when no view
is open, which keeps the single-client fast path untouched.

Version arithmetic.  Every view gets a fresh ticket from a monotone
clock.  An overlay entry ``(valid_through, copy)`` means: *copy* is the
state seen by every view whose ticket lies in ``(previous entry's
valid_through, valid_through]``.  Reads walk the (short, ascending)
entry list for the first ``valid_through >= ticket`` and fall through
to the live structure when none covers it -- exactly the "versions
newer than my snapshot are invisible" rule of classic MVCC.  Objects
and classes born after acquisition are filtered by the oid serial
watermark and the pinned class-name set; ``now`` is pinned by value, so
clock ticks need no overlay at all.

Consistency.  A view is acquired between operations on the (single)
writer thread or event loop, so it can never observe a torn operation;
acquisition is refused mid-batch (deferred cache maintenance means the
live structures run ahead of the generations) and inside an open
:class:`~repro.database.transactions.Transaction` (a rollback would
rewind state under a mid-transaction view).  Views acquired *before* a
transaction stay correct through a rollback: the overlays captured
during the transaction equal the pre-transaction state the rollback
restores (Def. 5.10 weak value equality).

Queries under a fresh view (no write since acquisition) run on the live
database with the full planner/index/cache stack; once a writer has
advanced, the view routes evaluation through a :class:`_ViewDatabase`
proxy that reads the overlays and reports ``caches = None`` -- the
planner's documented signal to choose the index-free scan path, which
needs nothing but the ``TypeContext`` surface the proxy implements.

Ablation: ``REPRO_NO_MVCC=1`` (env, read at import) or
:func:`set_enabled` / :func:`disabled` make acquisition raise
:class:`MVCCError` and turn the write-side hooks into no-ops -- the
serving layer then falls back to readers-block-writers execution,
which is the baseline ``benchmarks/bench_server.py`` measures against.
"""

from __future__ import annotations

import copy as _copy
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro import perf
from repro.errors import DatabaseError, UnknownClassError, UnknownObjectError

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase
    from repro.objects.object import TemporalObject
    from repro.query.ast import Query
    from repro.schema.class_def import ClassSignature
    from repro.temporal.intervalsets import IntervalSet
    from repro.values.oid import OID

#: Module-level ablation switch (mirrors ``repro.database.batch``).
is_enabled: bool = os.environ.get("REPRO_NO_MVCC", "").lower() not in (
    "1",
    "true",
    "yes",
)

_VIEWS = perf.metric("mvcc.views")
_COPIES = perf.metric("mvcc.copies")
_OVERLAY_READS = perf.metric("mvcc.overlay_reads")

#: Open views across every database in the process (gauge; exported as
#: ``repro_server_active_views``).
_ACTIVE_VIEWS = 0


def active_views() -> int:
    """How many read views are currently open, process-wide."""
    return _ACTIVE_VIEWS


def set_enabled(enabled: bool) -> bool:
    """Toggle MVCC snapshots; returns the previous value."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(enabled)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Scoped ablation: ``with mvcc.disabled(): ...``"""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class MVCCError(DatabaseError):
    """A read view was acquired or used illegally (mid-batch, inside an
    open transaction, after close, or with MVCC ablated)."""


class MVCCManager:
    """Per-database registry of open views and copy-on-write overlays.

    Owned by :class:`TemporalDatabase` (``db.mvcc``); the mutation
    entry points call the ``before_*`` hooks, the serving layer calls
    :meth:`acquire`.  All methods assume the single-writer discipline
    the engine already has (one thread / one event loop mutates).
    """

    __slots__ = (
        "_db",
        "_clock",
        "_views",
        "_max_ticket",
        "_object_versions",
        "_class_versions",
    )

    def __init__(self, db: "TemporalDatabase") -> None:
        self._db = db
        self._clock = 0
        #: Open tickets, ascending insertion order (dict as ordered set).
        self._views: dict[int, "ReadView"] = {}
        self._max_ticket = 0
        self._object_versions: dict["OID", list[tuple[int, Any]]] = {}
        self._class_versions: dict[str, list[tuple[int, Any]]] = {}

    # -- lifecycle --------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any view is open (hooks are no-ops otherwise)."""
        return bool(self._views)

    @property
    def open_views(self) -> int:
        return len(self._views)

    def acquire(self) -> "ReadView":
        """Open a consistent read view over the current state."""
        if not is_enabled:
            raise MVCCError("MVCC snapshots are ablated (REPRO_NO_MVCC)")
        db = self._db
        if db.in_batch:
            raise MVCCError(
                "cannot acquire a read view inside an open batch: "
                "deferred maintenance leaves generations behind the data"
            )
        journal = db.journal
        if (journal is not None and journal.in_transaction) or getattr(
            db, "_txn_active", False
        ):
            raise MVCCError(
                "cannot acquire a read view inside an open transaction: "
                "a rollback would rewind state under the view"
            )
        self._clock += 1
        ticket = self._clock
        view = ReadView(self, ticket)
        self._views[ticket] = view
        self._max_ticket = ticket
        global _ACTIVE_VIEWS
        _ACTIVE_VIEWS += 1
        _VIEWS.add()
        return view

    def _release(self, ticket: int) -> None:
        if self._views.pop(ticket, None) is None:
            return
        global _ACTIVE_VIEWS
        _ACTIVE_VIEWS -= 1
        if not self._views:
            # No reader can ever need an overlay entry again.
            self._object_versions.clear()
            self._class_versions.clear()
            self._max_ticket = 0
            return
        self._max_ticket = max(self._views)
        oldest = min(self._views)
        self._prune(self._object_versions, oldest)
        self._prune(self._class_versions, oldest)

    @staticmethod
    def _prune(store: dict, oldest: int) -> None:
        """Drop overlay entries no open ticket can reach.

        Entries are ascending in ``valid_through`` and a read takes the
        *first* entry ``>= ticket``, so everything strictly below the
        oldest open ticket is dead weight.
        """
        dead = []
        for key, entries in store.items():
            keep = [e for e in entries if e[0] >= oldest]
            if keep:
                if len(keep) != len(entries):
                    store[key] = keep
            else:
                dead.append(key)
        for key in dead:
            del store[key]

    # -- writer-side hooks ------------------------------------------------

    def before_object_change(self, oid: "OID") -> None:
        """Capture *oid*'s pre-image if an open view still needs it."""
        if not self._views:
            return
        store = self._object_versions.setdefault(oid, [])
        if store and store[-1][0] >= self._max_ticket:
            return  # the newest open view is already covered
        live = self._db._objects.get(oid)
        if live is None:
            return
        store.append((self._max_ticket, _copy.deepcopy(live)))
        _COPIES.add()

    def before_class_change(self, name: str) -> None:
        """Capture class *name*'s pre-image (signature + extent
        history) if an open view still needs it."""
        if not self._views:
            return
        store = self._class_versions.setdefault(name, [])
        if store and store[-1][0] >= self._max_ticket:
            return
        live = self._db._classes.get(name)
        if live is None:
            return
        store.append((self._max_ticket, _copy.deepcopy(live)))
        _COPIES.add()

    def before_extent_change(self, class_name: str) -> None:
        """Capture the pre-image of every class whose extent the
        operation will touch: *class_name* and all its superclasses."""
        if not self._views:
            return
        for ancestor in self._db._isa.superclasses(class_name):
            self.before_class_change(ancestor)

    # -- reads ------------------------------------------------------------

    def object_at(self, oid: "OID", ticket: int) -> "TemporalObject | None":
        entries = self._object_versions.get(oid)
        if entries:
            for valid_through, snapshot in entries:
                if valid_through >= ticket:
                    _OVERLAY_READS.add()
                    return snapshot
        return self._db._objects.get(oid)

    def class_at(self, name: str, ticket: int) -> "ClassSignature | None":
        entries = self._class_versions.get(name)
        if entries:
            for valid_through, snapshot in entries:
                if valid_through >= ticket:
                    _OVERLAY_READS.add()
                    return snapshot
        return self._db._classes.get(name)

    def stats(self) -> dict:
        """Overlay occupancy (for ``repro stats`` / debugging)."""
        return {
            "open_views": len(self._views),
            "object_overlays": sum(
                len(v) for v in self._object_versions.values()
            ),
            "class_overlays": sum(
                len(v) for v in self._class_versions.values()
            ),
        }


class ReadView:
    """One pinned, consistent view of the database.

    Use as a context manager (or call :meth:`close`)::

        with db.mvcc.acquire() as view:
            oids = view.execute("select employee where salary > 2000")

    ``version`` is the pinned ``(now, generation, op count)`` vector;
    ``ticket`` the MVCC ordering key.  :meth:`execute` runs on the live
    database (full planner/caches) while nothing has changed, and
    through the overlay proxy once a writer has advanced.
    """

    __slots__ = (
        "_mgr",
        "ticket",
        "now",
        "version",
        "_next_serial",
        "_class_names",
        "_proxy",
        "closed",
    )

    def __init__(self, mgr: MVCCManager, ticket: int) -> None:
        db = mgr._db
        self._mgr = mgr
        self.ticket = ticket
        #: The pinned clock reading; every read under the view anchors
        #: its temporal scopes here, whatever the live clock does.
        self.now = db.now
        #: The pinned ``(now, generation, op count)`` state vector.
        self.version = db._state_version()
        self._next_serial = db._oids.next_serial
        self._class_names = frozenset(db._classes)
        self._proxy: "_ViewDatabase | None" = None
        self.closed = False

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._mgr._release(self.ticket)

    def __enter__(self) -> "ReadView":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def stale(self) -> bool:
        """Whether a writer has advanced since acquisition."""
        return self._mgr._db._state_version() != self.version

    @property
    def db(self) -> Any:
        """The database-like object reads under this view must use."""
        if self.closed:
            raise MVCCError("read view is closed")
        if not self.stale:
            return self._mgr._db
        if self._proxy is None:
            self._proxy = _ViewDatabase(self)
        return self._proxy

    # -- reads ------------------------------------------------------------

    def execute(self, query: "Query | str") -> list["OID"]:
        """Evaluate *query* (text or AST) at this view's version."""
        from repro.query.evaluator import evaluate
        from repro.query.parser import parse_query

        if isinstance(query, str):
            query = parse_query(query)
        return evaluate(self.db, query)

    def get_object(self, oid: "OID") -> "TemporalObject":
        db = self.db
        return db.get_object(oid)

    def snapshot_at(self, oid: "OID", t: int | None = None):
        return self.db.snapshot_at(oid, self.now if t is None else t)

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "overlay" if self.stale else "live"
        )
        return (
            f"ReadView(ticket={self.ticket}, now={self.now}, {state})"
        )


class _ViewDatabase:
    """The overlay-reading stand-in for :class:`TemporalDatabase`.

    Implements the :class:`~repro.types.context.TypeContext` protocol
    plus the evaluator surface (``get_class`` / ``get_object`` /
    ``objects`` / ``anchor_extent`` / ``membership_times`` / ...),
    resolving every structure through the manager's overlays at the
    view's ticket.  ``caches = None`` tells the planner to take the
    scan path and the scatter-gather layer to stand down -- both treat
    a cache-less database as "no index layer" by contract.
    """

    #: No index/cache layer: the planner's documented scan signal.
    caches = None

    __slots__ = ("_view", "_mgr", "_live")

    def __init__(self, view: ReadView) -> None:
        self._view = view
        self._mgr = view._mgr
        self._live = view._mgr._db

    # -- time -------------------------------------------------------------

    @property
    def now(self) -> int:
        return self._view.now

    @property
    def current_time(self) -> int | None:
        return self._view.now

    # -- schema -----------------------------------------------------------

    @property
    def isa(self):
        # The ISA DAG only grows (class definition adds fresh names;
        # drops close lifespans without retracting edges), so the live
        # hierarchy restricted to the pinned class-name set is exact.
        return self._live._isa

    def get_class(self, name: str) -> "ClassSignature":
        if name not in self._view._class_names:
            raise UnknownClassError(f"class {name!r} is not defined")
        cls = self._mgr.class_at(name, self._view.ticket)
        if cls is None:  # pragma: no cover -- classes are never removed
            raise UnknownClassError(f"class {name!r} is not defined")
        return cls

    def known_class(self, name: str) -> bool:
        return name in self._view._class_names

    def class_names(self) -> tuple[str, ...]:
        return tuple(self._view._class_names)

    def classes(self) -> Iterator["ClassSignature"]:
        for name in self._view._class_names:
            yield self.get_class(name)

    # -- objects ----------------------------------------------------------

    def _lookup(self, oid: "OID") -> "TemporalObject | None":
        if oid.serial >= self._view._next_serial:
            return None  # born after the view
        return self._mgr.object_at(oid, self._view.ticket)

    def get_object(self, oid: "OID") -> "TemporalObject":
        obj = self._lookup(oid)
        if obj is None:
            raise UnknownObjectError(f"no object with oid {oid!r}")
        return obj

    def objects(self) -> Iterator["TemporalObject"]:
        watermark = self._view._next_serial
        ticket = self._view.ticket
        for oid in list(self._live._objects):
            if oid.serial >= watermark:
                continue
            obj = self._mgr.object_at(oid, ticket)
            if obj is not None:
                yield obj

    def __contains__(self, oid: object) -> bool:
        try:
            return self._lookup(oid) is not None  # type: ignore[arg-type]
        except AttributeError:
            return False

    def __len__(self) -> int:
        return sum(1 for _ in self.objects())

    # -- extents / TypeContext --------------------------------------------

    def pi(self, class_name: str, t: int) -> frozenset["OID"]:
        cls = self.get_class(class_name)
        return cls.history.members_at(t)

    #: The evaluator anchors scans here; identical to pi for a view.
    anchor_extent = pi

    def extent(self, class_name: str, t: int) -> frozenset["OID"]:
        if class_name not in self._view._class_names:
            return frozenset()
        return self.pi(class_name, t)

    def membership_times(
        self, class_name: str, oid: "OID"
    ) -> "IntervalSet":
        from repro.temporal.intervalsets import IntervalSet

        if class_name not in self._view._class_names:
            return IntervalSet.empty()
        cls = self.get_class(class_name)
        return cls.history.member_times(oid, self._view.now)

    def ever_member(self, class_name: str, oid: "OID") -> bool:
        if class_name not in self._view._class_names:
            return False
        return oid in self.get_class(class_name).history.ever_members()

    def member_throughout(
        self, class_name: str, oid: "OID", times: "IntervalSet"
    ) -> bool:
        return times.issubset(self.membership_times(class_name, oid))

    def classes_of(self, oid: "OID") -> tuple[str, ...]:
        obj = self._lookup(oid)
        if obj is None:
            return ()
        current = obj.most_specific_class(self._view.now)
        if current is not None:
            return tuple(self.isa.superclasses(current))
        names: set[str] = set()
        for _interval, class_name in obj.class_history.pairs():
            names.update(self.isa.superclasses(class_name))
        return tuple(names)

    def snapshot_at(self, oid: "OID", t: int | None = None):
        from repro.objects.state import snapshot as take_snapshot

        instant = self._view.now if t is None else t
        return take_snapshot(self.get_object(oid), instant, self._view.now)

    def __repr__(self) -> str:
        return f"_ViewDatabase({self._view!r})"
