"""Parallel scatter-gather execution over hash-partitioned extents.

Low-selectivity work -- a 100%-selectivity extent sweep, a quantified
``ALWAYS``/``SOMETIME`` scope (the paper's Def 6 temporal quantifiers),
a full integrity check -- is embarrassingly per-tuple: every object of
the extent is evaluated independently and the results are merged.  This
module fans that work out across a pool of ``multiprocessing`` workers:

* **fork-once workers.**  The pool forks its workers *once* (the
  ``fork`` start method; the child inherits the whole database as a
  copy-on-write snapshot) and pins the snapshot to the database's
  *state version* -- ``(now, global generation, operation count)`` --
  at fork time.  Every scatter validates the pin first: a query
  against a mutated database respawns the pool instead of reading a
  stale snapshot, and an unmutated database reuses the same workers
  for every query (``parallel.spawns`` counts forks; the E15 CI gate
  holds it at exactly one per benchmark run).
* **per-partition task framing.**  The caller's oid set is split by
  the database's :class:`~repro.database.database.Partitioning` layer
  (oid-serial hash, ``n_partitions`` auto-sized to cores), one task
  frame per non-empty partition.  A frame carries the partition
  *index*, not the oid slice -- the worker re-derives the identical
  slice from its pinned snapshot, and scan matches travel back as
  bare serials, keeping pickling off the critical path.  Workers
  return ``(task id, partition, ok, value, busy_us)`` frames; stale
  frames from an earlier, failed scatter are discarded by task id.
* **ordered merge.**  Each worker walks its slice in oid order and the
  gather concatenates slices in partition order, so the merged result
  is deterministic and -- after the final sort -- byte-identical to
  the serial path's output.
* **graceful serial fallback.**  Any pool failure (fork unavailable,
  a worker died, a task raised, the gather timed out) marks the pool
  broken, ticks ``parallel.fallbacks``, and the caller re-runs the
  work serially.  Parallelism is a pure optimization: it can never
  change a result, only the wall-clock.

Batches: during ``db.batch()`` cache maintenance is suspended and the
in-memory state runs ahead of the coalesced reconciliation
(:mod:`repro.database.batch`), so scatter is refused outright --
``usable()`` is false while ``caches.suspended`` -- and the per-op
serial path keeps the coalesced-delta discipline intact.

Ablation: ``REPRO_NO_PARALLEL=1`` in the environment (read at import),
or :func:`set_enabled` / :func:`disabled` -- the same switch shape as
``query.planner`` / ``database.batch`` / ``repro.obs``.

Observability: the parent wraps the two halves of a scatter-gather in
``parallel.scatter`` / ``parallel.gather`` spans; worker-reported busy
times land in the ``parallel.partition`` histogram.  Utilization is
derivable from the ``parallel.busy_us`` / ``parallel.wall_us`` metrics
(busy / (wall x degree)).
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro import perf
from repro.obs import spans as obs
from repro.obs.histograms import histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

#: Module-level ablation switch (mirrors ``query.planner.is_enabled``).
is_enabled: bool = os.environ.get(
    "REPRO_NO_PARALLEL", ""
).strip().lower() not in ("1", "true", "yes", "on")

_QUERIES = perf.metric("parallel.queries")
_TASKS = perf.metric("parallel.tasks")
_SPAWNS = perf.metric("parallel.spawns")
_FALLBACKS = perf.metric("parallel.fallbacks")
_BUSY_US = perf.metric("parallel.busy_us")
_WALL_US = perf.metric("parallel.wall_us")

#: Extents below this size never scatter: the fork/IPC overhead cannot
#: amortize over so little per-tuple work.
MIN_PARALLEL_ITEMS = 64

#: Fixed scatter cost in planner cost units (one unit = one posting
#: touch; see ``query.planner.EVAL_COST``): task framing, pickling and
#: the gather round trip.
SCATTER_OVERHEAD = 1500.0

#: Extra per-object weight of a quantified (SOMETIME/ALWAYS) scope in
#: the parallel-degree decision: the scan path walks every history
#: segment of the object instead of evaluating one instant.
QUANTIFIED_FACTOR = 8.0

#: Per-shipped-oid cost (pickle + queue transfer), in cost units.
SHIP_COST = 0.25

#: How long the gather waits for worker frames before declaring the
#: pool wedged (liveness is checked on every poll miss, so a *dead*
#: pool fails fast -- this bound only matters for a livelocked one).
GATHER_TIMEOUT_S = 120.0


def set_enabled(flag: bool) -> bool:
    """Enable/disable scatter-gather; returns the previous state."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the serial path (the ablation baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def default_partitions() -> int:
    """The default partition count: one per core."""
    return max(os.cpu_count() or 1, 1)


class PoolError(RuntimeError):
    """A scatter could not complete on the worker pool."""


# ------------------------------------------------------- task handlers
#
# A handler runs *inside a worker* against the forked database
# snapshot.  It must be pure read-only and return a picklable value.
#
# Framing discipline: tasks carry the *partition index*, not the oid
# slice -- the worker derives its slice from the snapshot it already
# holds (same version as the parent's, so the derivation is
# bit-identical), and scan results travel back as bare oid serials.
# Shipping 6k OID dataclasses through a queue costs ~10ms of pickling;
# 6k ints cost ~0.2ms, and at 100% selectivity that difference is the
# speedup gate.


def _partition_oids(db: "TemporalDatabase", oids, index: int) -> list:
    part = db.partitioning
    return sorted(oid for oid in oids if part.partition_of(oid) == index)


def _handle_scan(db: "TemporalDatabase", payload: tuple) -> list[int]:
    query, index = payload
    from repro.query.ast import TemporalScope
    from repro.query.evaluator import partition_matches

    now = db.now
    anchor = query.at if query.scope is TemporalScope.AT else now
    extent = db.anchor_extent(query.class_name, anchor)
    bucket = _partition_oids(db, extent, index)
    return [
        oid.serial for oid in partition_matches(db, query, bucket, now)
    ]


def _handle_integrity(db: "TemporalDatabase", payload: tuple) -> dict:
    (index,) = payload
    from repro.database import integrity

    oids = _partition_oids(db, db._objects, index)
    objects = [db.get_object(oid) for oid in oids]
    known = set(db._objects)
    return {
        "invariant_5_1": integrity._check_5_1_objects(db, objects),
        "invariant_5_2": integrity.check_invariant_5_2(db, objects),
        "referential_integrity": integrity.check_referential_integrity(
            db, objects=objects, known=known
        ),
        "object_consistency": integrity.check_object_consistency(
            db, objects
        ),
    }


_HANDLERS = {
    "scan": _handle_scan,
    "integrity": _handle_integrity,
}


def _worker_main(db: "TemporalDatabase", tasks, results) -> None:
    # The fork inherited the parent's contextvars and switches; tracing
    # inside the worker would only grow orphaned span trees in the
    # child's copy, so turn it off for the worker's lifetime.
    obs.set_enabled(False)
    while True:
        task = tasks.get()
        if task is None:
            return
        task_id, index, kind, payload = task
        start_ns = time.perf_counter_ns()
        try:
            value = _HANDLERS[kind](db, payload)
            ok = True
        except Exception as exc:  # ship the failure to the parent
            value = f"{type(exc).__name__}: {exc}"
            ok = False
        busy_us = (time.perf_counter_ns() - start_ns) // 1000
        results.put((task_id, index, ok, value, busy_us))


# -------------------------------------------------------- worker pool


class WorkerPool:
    """A fork-once pool of workers sharing one database snapshot.

    The pool records the database's state version at fork time; callers
    (:func:`pool_for`) compare it before every scatter and respawn on
    mismatch, so workers only ever answer for the exact
    generation/``now`` they hold.
    """

    __slots__ = (
        "n_workers",
        "version",
        "broken",
        "_tasks",
        "_results",
        "_workers",
        "_seq",
    )

    def __init__(self, db: "TemporalDatabase", n_workers: int) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.n_workers = n_workers
        self.version = db._state_version()
        self.broken = False
        self._seq = 0
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_worker_main,
                args=(db, self._tasks, self._results),
                daemon=True,
                name=f"repro-parallel-{index}",
            )
            for index in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()
        _SPAWNS.add()

    # -- lifecycle -----------------------------------------------------

    def alive(self) -> bool:
        return not self.broken and all(
            worker.is_alive() for worker in self._workers
        )

    def close(self) -> None:
        """Terminate the workers and release the queues."""
        self.broken = True
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=0.5)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            if not self.broken:
                self.close()
        except Exception:
            pass

    # -- scatter-gather ------------------------------------------------

    def run(
        self,
        kind: str,
        payloads: Sequence[tuple],
        timeout: float = GATHER_TIMEOUT_S,
    ) -> list[Any]:
        """Scatter *payloads* (one task each) and gather in order.

        Returns the per-payload results, index-aligned.  Raises
        :class:`PoolError` on any worker failure; the pool is marked
        broken then and the next :func:`pool_for` respawns it.
        """
        if not self.alive():
            self.broken = True
            raise PoolError("worker pool is not alive")
        task_id = self._seq
        self._seq += 1
        started_ns = time.perf_counter_ns()
        if obs.is_enabled:
            with obs.span(
                "parallel.scatter", tasks=len(payloads), task_kind=kind
            ):
                self._scatter(task_id, kind, payloads)
        else:
            self._scatter(task_id, kind, payloads)
        try:
            if obs.is_enabled:
                with obs.span(
                    "parallel.gather", tasks=len(payloads), task_kind=kind
                ):
                    results = self._gather(
                        task_id, len(payloads), timeout
                    )
            else:
                results = self._gather(task_id, len(payloads), timeout)
        except PoolError:
            self.broken = True
            raise
        wall_us = (time.perf_counter_ns() - started_ns) // 1000
        _WALL_US.add(wall_us)
        _QUERIES.add()
        return results

    def _scatter(
        self, task_id: int, kind: str, payloads: Sequence[tuple]
    ) -> None:
        for index, payload in enumerate(payloads):
            self._tasks.put((task_id, index, kind, payload))
            _TASKS.add()

    def _gather(
        self, task_id: int, n_tasks: int, timeout: float
    ) -> list[Any]:
        results: list[Any] = [None] * n_tasks
        pending = n_tasks
        deadline = time.monotonic() + timeout
        while pending:
            try:
                frame = self._results.get(timeout=0.05)
            except queue_mod.Empty:
                if not self.alive():
                    raise PoolError("a worker died mid-scatter")
                if time.monotonic() > deadline:
                    raise PoolError(
                        f"gather timed out after {timeout:.0f}s"
                    )
                continue
            frame_task, index, ok, value, busy_us = frame
            if frame_task != task_id:
                continue  # stale frame from an abandoned scatter
            if not ok:
                raise PoolError(f"worker task failed: {value}")
            _BUSY_US.add(busy_us)
            if obs.is_enabled:
                histogram("parallel.partition").record(busy_us)
            results[index] = value
            pending -= 1
        return results


# ------------------------------------------------------ orchestration


def usable(db: "TemporalDatabase") -> bool:
    """Whether scatter-gather may run against *db* right now.

    False while ablated, while a bulk batch has cache maintenance
    suspended (the snapshot discipline of :mod:`repro.database.batch`
    owns correctness then), with a single partition, or on a platform
    without ``fork``.
    """
    if not is_enabled:
        return False
    caches = getattr(db, "caches", None)
    if caches is None or caches.suspended or db.in_batch:
        return False
    if db.partitioning.n_partitions < 2:
        return False
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def plan_degree(
    db: "TemporalDatabase",
    extent_size: int,
    cost_serial: float,
    quantified: bool = False,
) -> tuple[int, float | None]:
    """The parallelism degree for a scan, with its estimated cost.

    The cost model is ``cost_serial / degree + scatter overhead``
    (fixed framing/IPC cost plus a per-shipped-oid term); quantified
    scopes weight the serial cost by :data:`QUANTIFIED_FACTOR` because
    their per-object evaluation walks every history segment.  Returns
    ``(1, None)`` when the scatter cannot pay for itself (small extent,
    single partition, ablated, mid-batch).
    """
    if extent_size < MIN_PARALLEL_ITEMS or not usable(db):
        return 1, None
    degree = db.partitioning.n_partitions
    weighted = cost_serial * (QUANTIFIED_FACTOR if quantified else 1.0)
    cost_parallel = (
        weighted / degree + SCATTER_OVERHEAD + extent_size * SHIP_COST
    )
    if cost_parallel >= weighted:
        return 1, cost_parallel
    return degree, cost_parallel


def pool_for(db: "TemporalDatabase") -> WorkerPool | None:
    """The database's worker pool, (re)spawned as needed.

    Reuses the existing pool when it is alive and its snapshot version
    still matches the database; respawns on staleness or breakage.
    Returns ``None`` when a pool cannot be spawned at all.
    """
    if not usable(db):
        return None
    pool: WorkerPool | None = getattr(db, "_parallel_pool", None)
    version = db._state_version()
    if pool is not None and pool.alive() and pool.version == version:
        return pool
    if pool is not None:
        pool.close()
        db._parallel_pool = None
    try:
        pool = WorkerPool(db, db.partitioning.n_partitions)
    except Exception:
        _FALLBACKS.add()
        return None
    db._parallel_pool = pool
    return pool


def shutdown(db: "TemporalDatabase") -> None:
    """Tear down the database's worker pool, if any."""
    pool = getattr(db, "_parallel_pool", None)
    if pool is not None:
        pool.close()
        db._parallel_pool = None


def scan_query(db: "TemporalDatabase", query, plan) -> list | None:
    """Run *query*'s scan through the pool; ``None`` = caller goes serial.

    The anchor extent is computed (and cached) in the parent only to
    decide which partitions are populated; each task ships just the
    query and a partition index, the worker derives the identical
    slice from its snapshot, and matched oids come back as serials.
    The serial-sorted merge equals the serial scan's output exactly
    (oid order is serial order -- serials are globally unique).
    """
    from repro.query.ast import TemporalScope

    pool = pool_for(db)
    if pool is None:
        _FALLBACKS.add()
        return None
    now = db.now
    anchor = query.at if query.scope is TemporalScope.AT else now
    extent = db.anchor_extent(query.class_name, anchor)
    buckets = db.partitioning.split(extent)
    payloads = [
        (query, index)
        for index, bucket in enumerate(buckets)
        if bucket
    ]
    if not payloads:
        return []
    try:
        slices = pool.run("scan", payloads)
    except PoolError:
        _FALLBACKS.add()
        return None
    by_serial = {oid.serial: oid for oid in extent}
    return [
        by_serial[serial]
        for serial in sorted(
            serial for part in slices for serial in part
        )
    ]


def integrity_scatter(
    db: "TemporalDatabase", oids: Sequence
) -> list[dict] | None:
    """Fan the per-object integrity checkers out over oid slices.

    Returns the per-partition violation dicts in partition order, or
    ``None`` when the caller must run the serial path.
    """
    if len(oids) < MIN_PARALLEL_ITEMS:
        return None
    pool = pool_for(db)
    if pool is None:
        _FALLBACKS.add()
        return None
    buckets = db.partitioning.split(oids)
    payloads = [
        (index,) for index, bucket in enumerate(buckets) if bucket
    ]
    if not payloads:
        return []
    try:
        return pool.run("integrity", payloads)
    except PoolError:
        _FALLBACKS.add()
        return None
