"""Secondary temporal attribute indexes: value -> oid posting lists.

The stabbing indexes of :mod:`repro.database.indexes` answer *extent*
questions ("who is a member of c at t").  This module answers the
complementary *predicate* question the query planner pushes down:
"which oids held value v (or a value in a range, or a collection
containing v) under attribute a, and at which instants".

One :class:`AttributeIndex` covers one attribute *name* across the
whole object population (attribute reads in the query evaluator depend
only on the object, never on the queried class; candidacy is restricted
to the class extent separately, by intersection).  Per oid it mirrors
exactly the evaluator's ``_read_attribute`` semantics:

* a live :class:`TemporalValue` slot contributes its recorded pairs
  (open pairs stay open -- a probe resolves them against the clock, so
  ticks never stale the index);
* a missing slot falls back to the retained (closed) history;
* a static slot contributes only at the probe-time ``now`` (static
  attributes are unknown at past instants);
* null values are never indexed (every indexable atom is
  null-rejecting).

Postings are keyed so that key equality coincides with
:func:`~repro.values.structure.values_equal` on the keyable carriers
(int/float unify, bool stays apart, strings and oids by value).  A
value outside those carriers marks the index ``value_ok = False`` (the
planner then leaves equality/range atoms to the residual evaluator);
collection members are tracked the same way under ``element_ok`` for
``In``/``Contains`` probes.

Maintenance follows the :mod:`repro.database.caches` discipline:
mutation-side maintenance is unconditional (the registry re-derives the
touched oid's postings from the event stream), lookups honour the
global ablation switch, and wholesale invalidation (schema evolution,
transaction rollback, recovery) simply drops the indexes -- they are
rebuilt lazily on the next probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro import perf
from repro.database.events import Event, EventKind
from repro.obs import spans as obs_spans
from repro.temporal.instants import Now
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null
from repro.values.oid import OID

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

#: Built indexes per registry; cleared wholesale past the cap.
REGISTRY_LIMIT = 32

#: Memoized probe results per index; cleared on any maintenance.
PROBE_MEMO_LIMIT = 1024

#: Rebuild heuristic for batched maintenance: once a batch has touched
#: at least this fraction of the live population, dropping the indexes
#: for lazy rebuild beats rederiving the touched oids one by one (the
#: delta would redo most of a full build, and a rebuild only ever pays
#: for attributes that are probed again).
REBUILD_FRACTION = 0.5

_INDEX = perf.counter("database.attr_index")
_PROBE_MEMO = perf.counter("planner.probe_memo")

#: A posting span: ``(start, end)`` with ``end is None`` for an open
#: (now-ended) pair -- open pairs contain every instant from their
#: start onwards, mirroring ``TemporalValue._locate``.
Span = tuple[int, "int | None"]


def value_key(value: Any) -> tuple | None:
    """A hashable key whose equality coincides with ``values_equal``
    on the keyable carriers; ``None`` for everything else."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", value)  # 1 and 1.0 hash and compare equal
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, OID):
        return ("o", value)
    return None


def _span_contains(span: Span, t: int) -> bool:
    start, end = span
    if t < start:
        return False
    return end is None or t <= end


def _spans_to_set(spans: Iterable[Span], now: int) -> IntervalSet:
    # Open spans become moving intervals; IntervalSet resolves them
    # against *now* (an open span starting past now resolves empty).
    return IntervalSet(
        (
            Interval.from_now(start)
            if end is None
            else Interval(start, end)
            for start, end in spans
        ),
        now=now,
    )


class AttributeIndex:
    """Posting lists for one attribute name across the population."""

    __slots__ = (
        "name",
        "value_ok",
        "element_ok",
        "_by_value",
        "_by_element",
        "_static_value",
        "_static_element",
        "_contrib",
        "_memo",
        "revision",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.value_ok = True
        self.element_ok = True
        # key -> (representative value, oid -> spans)
        self._by_value: dict[tuple, tuple[Any, dict[OID, list[Span]]]] = {}
        self._by_element: dict[tuple, tuple[Any, dict[OID, list[Span]]]] = {}
        # key -> (representative value, oids) -- contributes at probe-now
        self._static_value: dict[tuple, tuple[Any, set[OID]]] = {}
        self._static_element: dict[tuple, tuple[Any, set[OID]]] = {}
        # oid -> keys it appears under, one set per table above
        self._contrib: dict[OID, tuple[set, set, set, set]] = {}
        self._memo: dict[tuple, Any] = {}
        self.revision = 0

    # ----------------------------------------------------------- build

    def cover(self, obj) -> None:
        """Add (or refresh) the postings contributed by *obj*."""
        oid = obj.oid
        if oid in self._contrib:
            self.forget(oid)
        keys: tuple[set, set, set, set] = (set(), set(), set(), set())
        slot = obj.value.get(self.name, _MISSING)
        if slot is _MISSING:
            history = obj.retained.get(self.name)
            if history is not None:
                self._cover_temporal(oid, history, keys)
        elif isinstance(slot, TemporalValue):
            self._cover_temporal(oid, slot, keys)
        elif not is_null(slot):
            self._cover_static(oid, slot, keys)
        if any(keys):
            self._contrib[oid] = keys

    def _cover_temporal(
        self, oid: OID, history: TemporalValue, keys
    ) -> None:
        for interval, value in history.pairs():
            if is_null(value):
                continue
            end = interval.end
            span: Span = (
                interval.start, None if isinstance(end, Now) else end
            )
            key = value_key(value)
            if key is None:
                self.value_ok = False
            else:
                _, postings = self._by_value.setdefault(
                    key, (value, {})
                )
                postings.setdefault(oid, []).append(span)
                keys[0].add(key)
            if isinstance(value, (set, frozenset, list, tuple)):
                for member in value:
                    if is_null(member):
                        continue
                    member_key = value_key(member)
                    if member_key is None:
                        self.element_ok = False
                        continue
                    _, postings = self._by_element.setdefault(
                        member_key, (member, {})
                    )
                    postings.setdefault(oid, []).append(span)
                    keys[1].add(member_key)

    def _cover_static(self, oid: OID, value: Any, keys) -> None:
        key = value_key(value)
        if key is None:
            self.value_ok = False
        else:
            _, oids = self._static_value.setdefault(key, (value, set()))
            oids.add(oid)
            keys[2].add(key)
        if isinstance(value, (set, frozenset, list, tuple)):
            for member in value:
                if is_null(member):
                    continue
                member_key = value_key(member)
                if member_key is None:
                    self.element_ok = False
                    continue
                _, oids = self._static_element.setdefault(
                    member_key, (member, set())
                )
                oids.add(oid)
                keys[3].add(member_key)

    def forget(self, oid: OID) -> None:
        """Drop every posting contributed by *oid*."""
        keys = self._contrib.pop(oid, None)
        if keys is None:
            return
        for table, contributed in (
            (self._by_value, keys[0]),
            (self._by_element, keys[1]),
        ):
            for key in contributed:
                entry = table.get(key)
                if entry is None:
                    continue
                entry[1].pop(oid, None)
                if not entry[1]:
                    del table[key]
        for table, contributed in (
            (self._static_value, keys[2]),
            (self._static_element, keys[3]),
        ):
            for key in contributed:
                entry = table.get(key)
                if entry is None:
                    continue
                entry[1].discard(oid)
                if not entry[1]:
                    del table[key]

    def rederive(self, oid: OID, db: "TemporalDatabase") -> None:
        """Recompute *oid*'s contribution from its current state."""
        self.revision += 1
        self._memo.clear()
        obj = db._objects.get(oid)
        if obj is None:
            self.forget(oid)
        else:
            self.cover(obj)

    # ---------------------------------------------------------- probes

    def supports(self, spec: tuple) -> bool:
        """Can this index answer *spec* exactly?"""
        kind = spec[0]
        if kind == "cmp":
            return self.value_ok
        if kind == "member":
            return self.element_ok
        if kind == "val-in":
            return self.value_ok
        return False

    def _entries(
        self, spec: tuple
    ) -> Iterator[tuple[dict[OID, list[Span]] | None, set[OID] | None]]:
        """The ``(temporal postings, static oids)`` pairs matching
        *spec* -- one pair per matched key."""
        from repro.query.evaluator import _compare
        from repro.query.ast import CompareOp

        kind = spec[0]
        if kind == "cmp":
            op, const = spec[1], spec[2]
            if op is CompareOp.EQ:
                key = value_key(const)
                entry = self._by_value.get(key) if key else None
                static = self._static_value.get(key) if key else None
                yield (
                    entry[1] if entry else None,
                    static[1] if static else None,
                )
                return
            for key, (representative, postings) in self._by_value.items():
                if _compare(op, representative, const):
                    yield postings, None
            for key, (representative, oids) in self._static_value.items():
                if _compare(op, representative, const):
                    yield None, oids
            return
        if kind == "member":
            key = value_key(spec[1])
            entry = self._by_element.get(key) if key else None
            static = self._static_element.get(key) if key else None
            yield (
                entry[1] if entry else None,
                static[1] if static else None,
            )
            return
        if kind == "val-in":
            seen: set[tuple] = set()
            for member in spec[1]:
                key = value_key(member)
                if key is None or key in seen:
                    continue
                seen.add(key)
                entry = self._by_value.get(key)
                static = self._static_value.get(key)
                yield (
                    entry[1] if entry else None,
                    static[1] if static else None,
                )
            return
        raise ValueError(f"unknown probe spec {spec!r}")

    def estimate(self, spec: tuple) -> int:
        """Estimated matching oids (posting-list sizes, pre-probe)."""
        total = 0
        for postings, static in self._entries(spec):
            if postings:
                total += len(postings)
            if static:
                total += len(static)
        return total

    def matching_at(self, spec: tuple, t: int, now: int) -> set[OID]:
        """The oids whose atom holds at instant *t* (exact)."""
        memo_key = self._memo_key("at", spec, t, now)
        if memo_key is not None:
            cached = self._memo.get(memo_key)
            if cached is not None:
                _PROBE_MEMO.hit()
                return cached
            _PROBE_MEMO.miss()
        hits: set[OID] = set()
        for postings, static in self._entries(spec):
            if postings:
                for oid, spans in postings.items():
                    if oid in hits:
                        continue
                    if any(_span_contains(span, t) for span in spans):
                        hits.add(oid)
            if static and t == now:
                hits |= static
        self._memo_store(memo_key, hits)
        return hits

    def matching_when(
        self, spec: tuple, now: int
    ) -> dict[OID, IntervalSet]:
        """Per oid, the instants (up to *now*) at which the atom holds."""
        memo_key = self._memo_key("when", spec, None, now)
        if memo_key is not None:
            cached = self._memo.get(memo_key)
            if cached is not None:
                _PROBE_MEMO.hit()
                return cached
            _PROBE_MEMO.miss()
        spans_of: dict[OID, list[Span]] = {}
        for postings, static in self._entries(spec):
            if postings:
                for oid, spans in postings.items():
                    spans_of.setdefault(oid, []).extend(spans)
            if static:
                for oid in static:
                    spans_of.setdefault(oid, []).append((now, now))
        result = {
            oid: _spans_to_set(spans, now)
            for oid, spans in spans_of.items()
        }
        self._memo_store(memo_key, result)
        return result

    def _memo_key(
        self, mode: str, spec: tuple, t: int | None, now: int
    ) -> tuple | None:
        kind = spec[0]
        if kind == "cmp":
            probe = ("cmp", spec[1], value_key(spec[2]))
            if probe[2] is None:
                return None
        elif kind == "member":
            probe = ("member", value_key(spec[1]))
            if probe[1] is None:
                return None
        else:
            keys = []
            for member in spec[1]:
                key = value_key(member)
                if key is not None:
                    keys.append(key)
            probe = ("val-in", frozenset(keys))
        return (mode, probe, t, now, self.revision)

    def _memo_store(self, memo_key: tuple | None, result) -> None:
        if memo_key is None:
            return
        if len(self._memo) >= PROBE_MEMO_LIMIT:
            self._memo.clear()
        self._memo[memo_key] = result

    # ------------------------------------------------------ diagnostics

    def sizes(self) -> dict[str, int]:
        return {
            "values": len(self._by_value),
            "elements": len(self._by_element),
            "static": len(self._static_value),
            "oids": len(self._contrib),
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.sizes().items())
        return f"AttributeIndex({self.name!r}, {body})"


_MISSING = object()


class AttributeIndexRegistry:
    """The per-database collection of built attribute indexes.

    Owned by :class:`~repro.database.caches.DatabaseCaches`; built
    lazily on the first planner probe of an attribute, maintained
    incrementally from the event stream, dropped wholesale on schema
    evolution / rollback (and therefore rebuilt lazily after recovery).
    """

    __slots__ = ("_indexes", "suspended")

    def __init__(self) -> None:
        self._indexes: dict[str, AttributeIndex] = {}
        #: Set by :meth:`DatabaseCaches.suspend` during a bulk batch:
        #: incremental maintenance is deferred, so a built index may
        #: not describe the current state -- refuse to serve it.
        self.suspended = False

    def get(
        self, db: "TemporalDatabase", name: str
    ) -> AttributeIndex | None:
        """The index for attribute *name*, built on demand.

        Returns ``None`` with caching ablated (the planner then leaves
        every atom to the residual evaluator) and during a bulk batch
        (maintenance is deferred, so built indexes may be stale).
        """
        if not perf.is_enabled or self.suspended:
            return None
        index = self._indexes.get(name)
        if index is not None:
            _INDEX.hit()
            return index
        _INDEX.miss()
        if len(self._indexes) >= REGISTRY_LIMIT:
            _INDEX.invalidate(len(self._indexes))
            self._indexes.clear()
        index = AttributeIndex(name)
        # obs_spans.Span is the tracing span; this module's own Span
        # (a value hold-interval) is unrelated.
        with obs_spans.span("cache.rebuild", index="attribute", attr=name):
            for obj in db.objects():
                index.cover(obj)
        self._indexes[name] = index
        return index

    def peek(self, name: str) -> AttributeIndex | None:
        """The built index for *name*, if any (no build)."""
        return self._indexes.get(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._indexes))

    def on_event(self, db: "TemporalDatabase", event: Event) -> None:
        """Incremental maintenance off the event stream.

        UPDATE/CORRECT touch one attribute of one oid; the structural
        events (CREATE, MIGRATE, DELETE) may rewrite several slots
        (migration closes/resumes histories), so every built index
        re-derives the oid.  Maintenance is unconditional -- like every
        cache here, indexes stay coherent while ablated.
        """
        if not self._indexes:
            return
        if event.kind in (EventKind.UPDATE, EventKind.CORRECT):
            index = self._indexes.get(event.attribute or "")
            if index is not None:
                index.rederive(event.oid, db)
            return
        for index in self._indexes.values():
            index.rederive(event.oid, db)

    def apply_delta(
        self,
        db: "TemporalDatabase",
        touched: "dict[OID, set[str] | None]",
    ) -> bool:
        """Coalesced maintenance after a bulk batch.

        *touched* maps each oid mutated during the batch to the set of
        attribute names its UPDATE/CORRECT events named, or ``None``
        when a structural event (CREATE/MIGRATE/DELETE) requires the
        oid rederived in every built index.  Each ``(index, oid)`` pair
        is rederived once, however many events named it.

        Returns True when the size heuristic chose the wholesale drop
        (lazy rebuild) instead: past ``REBUILD_FRACTION`` of the live
        population the delta would redo most of a full build eagerly,
        while a drop defers the cost to the next probe of each
        attribute -- and skips unprobed attributes entirely.
        """
        if not self._indexes or not touched:
            return False
        population = len(db._objects)
        if population and len(touched) >= REBUILD_FRACTION * population:
            self.invalidate_all()
            return True
        for oid, attrs in touched.items():
            if attrs is None:
                for index in self._indexes.values():
                    index.rederive(oid, db)
            else:
                for name in attrs:
                    index = self._indexes.get(name)
                    if index is not None:
                        index.rederive(oid, db)
        return False

    def invalidate_all(self) -> None:
        """Schema evolution / rollback: drop everything, rebuild lazily."""
        if self._indexes:
            _INDEX.invalidate(len(self._indexes))
            self._indexes.clear()

    def sizes(self) -> dict[str, dict[str, int]]:
        return {
            name: index.sizes()
            for name, index in sorted(self._indexes.items())
        }

    def __repr__(self) -> str:
        return f"AttributeIndexRegistry({self.names()})"
