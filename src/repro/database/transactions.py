"""Atomic update batches.

The model's invariants relate several structures (object values, class
histories, the clock); a half-applied batch of updates can violate
them.  :class:`Transaction` provides all-or-nothing application with
state-snapshot rollback, plus an optional post-commit integrity check
that turns any residual violation into an abort.

This is a single-writer, in-memory transaction facility (the paper
models valid time only; there is no concurrency or transaction-time
dimension to honour), implemented by deep-copying the engine state at
``begin`` -- simple, obviously correct, and cheap at the scales the
benchmarks use.  Use as a context manager::

    with Transaction(db) as txn:
        db.update_attribute(oid, "salary", 2800.0)
        db.migrate(oid, "manager", {"officialcar": "M-001"})
    # committed; any exception inside the block rolls everything back
"""

from __future__ import annotations

import copy
from typing import Any

from repro.errors import BatchError, IntegrityError, TransactionError


class Transaction:
    """All-or-nothing application of a batch of database operations.

    A bulk batch (``db.batch()``) may be opened *inside* a transaction
    -- its group-commit flush then defers the durability barrier to the
    transaction commit, and a rollback truncates the whole batch with
    the rest of the journal suffix.  The converse nesting (a
    transaction begun inside an open batch) is rejected: the backup
    would capture mid-batch state that the batch's deferred
    reconciliation no longer describes.
    """

    def __init__(self, db: Any, verify: bool = False) -> None:
        """*verify* runs :func:`~repro.database.integrity.check_database`
        at commit and aborts on violations."""
        self._db = db
        self._verify = verify
        self._backup: dict[str, Any] | None = None

    def begin(self) -> "Transaction":
        if self._backup is not None:
            raise TransactionError("transaction already begun")
        if getattr(self._db, "in_batch", False):
            raise BatchError(
                "cannot begin a transaction inside an open batch; "
                "open the batch inside the transaction instead"
            )
        # One deepcopy call so shared references (metaclass -> class)
        # stay shared inside the backup.
        self._backup = copy.deepcopy(
            {
                "clock": self._db.clock,
                "isa": self._db._isa,
                "classes": self._db._classes,
                "metaclasses": self._db._metaclasses,
                "objects": self._db._objects,
                "oids": self._db._oids,
            }
        )
        # Journal scope: records appended inside the batch become
        # durable only at commit (the flush barrier); rollback
        # truncates them off the journal.
        journal = getattr(self._db, "journal", None)
        if journal is not None:
            journal.begin()
        # MVCC read views must not open while we can still roll back
        # (the overlays cannot describe a state rewind mid-view).
        if hasattr(self._db, "_txn_active"):
            self._db._txn_active = True
        return self

    def commit(self) -> None:
        if self._backup is None:
            raise TransactionError("no transaction in progress")
        if getattr(self._db, "in_batch", False):
            raise TransactionError(
                "cannot commit while a batch is still open"
            )
        if self._verify:
            from repro.database.integrity import check_database

            report = check_database(self._db)
            if not report.ok:
                problems = report.all_violations()
                self.rollback()
                raise IntegrityError(
                    "transaction aborted by integrity check: "
                    + "; ".join(problems[:5])
                )
        journal = getattr(self._db, "journal", None)
        if journal is not None and journal.in_transaction:
            journal.commit()
        if hasattr(self._db, "_txn_active"):
            self._db._txn_active = False
        self._backup = None

    def rollback(self) -> None:
        if self._backup is None:
            raise TransactionError("no transaction in progress")
        journal = getattr(self._db, "journal", None)
        if journal is not None and journal.in_transaction:
            # abort() also discards a still-open batch buffer: those
            # records never reached the disk.
            journal.abort()
        batch = getattr(self._db, "_batch", None)
        if batch is not None:
            # The batched operations are erased with the backup swap
            # below; tell the batch to close by dropping its deferred
            # events instead of reconciling them.
            batch.mark_rolled_back()
        if hasattr(self._db, "_txn_active"):
            self._db._txn_active = False
        self._db.clock = self._backup["clock"]
        self._db._isa = self._backup["isa"]
        self._db._classes = self._backup["classes"]
        self._db._metaclasses = self._backup["metaclasses"]
        self._db._objects = self._backup["objects"]
        self._db._oids = self._backup["oids"]
        self._backup = None
        # Entries cached inside the aborted batch describe discarded
        # state; drop the lot (generations never rewind).
        caches = getattr(self._db, "caches", None)
        if caches is not None:
            caches.invalidate_all()

    @property
    def active(self) -> bool:
        return self._backup is not None

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
