"""Invalidation-correct caches for the database hot paths.

Every query-side operation of the engine funnels through a small set of
per-call computations: the extent ``pi(c, t)`` (Invariant 5.1), an
object's membership lifespan in a class, and the snapshot projection
``snapshot(i, t)`` (Section 5.3).  :class:`DatabaseCaches` memoizes all
three, plus the per-class :class:`IntervalStabbingIndex` that serves
the query evaluator's AT/NOW anchor-extent computation.

Invalidation model
------------------
Correctness rests on three generation counters plus the clock reading:

* a **global generation**, bumped by schema evolution
  (``define_class``/``drop_class``/``add_attribute``/
  ``remove_attribute``) and by transaction rollback -- operations that
  can rewrite arbitrary state without touching individual extents;
* a **per-class generation**, bumped from the database's event emission
  points for every operation that changes the class's extent (CREATE,
  MIGRATE and DELETE bump the class and all its superclasses);
* a **per-oid generation**, bumped for every event naming the oid
  (UPDATE and CORRECT rewrite attribute histories; CREATE, MIGRATE and
  DELETE change the value component and the lifespan).

Each cache entry records the generations (and, where the result depends
on it, the clock reading ``now``) current at computation time; a lookup
hits only when all of them still match, so stale entries die passively
-- no eager cache walks on mutation.  The stabbing indexes are the one
exception: an index is *stale-marked* (dropped) eagerly when its
class's generation bumps, as promised by the
:mod:`repro.database.indexes` docstring.

Every cache respects the global ablation switch
(:func:`repro.perf.set_enabled`): with caching disabled, lookups miss
and stores are skipped, so the engine recomputes every answer from
first principles.  ``tests/test_hotpath_caches.py`` asserts the two
modes agree under randomized mutate-then-read sequences.

Bulk batches
------------
During a ``db.batch()`` the per-event maintenance above is suspended
(:meth:`DatabaseCaches.suspend`): mutations do not bump generations,
so lookups and stores are bypassed wholesale -- a mid-batch read must
never be served from a pre-batch entry whose generations still match.
At batch exit :meth:`DatabaseCaches.resume` reconciles in one pass:
one generation bump per touched class and oid, and one coalesced
delta (or a wholesale drop, per the rebuild heuristic) for the
attribute indexes, instead of one maintenance round per event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import perf
from repro.database.attr_indexes import AttributeIndexRegistry
from repro.obs import spans as obs
from repro.database.events import Event, EventKind
from repro.database.indexes import IntervalStabbingIndex, extent_index
from repro.temporal.intervalsets import IntervalSet
from repro.values.oid import OID
from repro.values.records import RecordValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

#: Entry cap per table; the table is cleared wholesale past it.
CACHE_LIMIT = 8192

#: Populations below this size answer extent stabs faster via the
#: set-valued history bisect than via building an interval tree.
INDEX_MIN_POPULATION = 32

_PI = perf.counter("database.pi")
_MEMBERSHIP = perf.counter("database.membership_times")
_SNAPSHOT = perf.counter("database.snapshot")
_INDEX = perf.counter("database.extent_index")


class DatabaseCaches:
    """The caching layer owned by one :class:`TemporalDatabase`."""

    __slots__ = (
        "_global_gen",
        "_class_gen",
        "_oid_gen",
        "_pi",
        "_membership",
        "_snapshot",
        "_indexes",
        "attr_indexes",
        "suspended",
    )

    def __init__(self) -> None:
        self.suspended = False
        self._global_gen = 0
        self._class_gen: dict[str, int] = {}
        self._oid_gen: dict[OID, int] = {}
        # (class, t) -> (global_gen, class_gen, extent)
        self._pi: dict[
            tuple[str, int], tuple[int, int, frozenset[OID]]
        ] = {}
        # (class, oid) -> (global_gen, class_gen, oid_gen, now, times)
        self._membership: dict[
            tuple[str, OID], tuple[int, int, int, int, IntervalSet]
        ] = {}
        # (oid, t) -> (global_gen, oid_gen, now, record)
        self._snapshot: dict[
            tuple[OID, int], tuple[int, int, int, RecordValue]
        ] = {}
        # class -> (global_gen, class_gen, built_at_now, index)
        self._indexes: dict[
            str, tuple[int, int, int, IntervalStabbingIndex]
        ] = {}
        # Secondary attribute indexes for the query planner.
        self.attr_indexes = AttributeIndexRegistry()

    # ------------------------------------------------------- generations

    def class_generation(self, class_name: str) -> int:
        return self._class_gen.get(class_name, 0)

    def oid_generation(self, oid: OID) -> int:
        return self._oid_gen.get(oid, 0)

    def bump_class(self, class_name: str) -> None:
        """The extent of *class_name* changed."""
        self._class_gen[class_name] = (
            self._class_gen.get(class_name, 0) + 1
        )
        if self._indexes.pop(class_name, None) is not None:
            _INDEX.invalidate()

    def bump_oid(self, oid: OID) -> None:
        """The state (value/lifespan) of *oid* changed."""
        self._oid_gen[oid] = self._oid_gen.get(oid, 0) + 1

    def bump_all(self) -> None:
        """Schema evolution / rollback: drop everything."""
        self._global_gen += 1
        dropped = (
            len(self._pi)
            + len(self._membership)
            + len(self._snapshot)
        )
        self._pi.clear()
        self._membership.clear()
        self._snapshot.clear()
        if self._indexes:
            _INDEX.invalidate(len(self._indexes))
            self._indexes.clear()
        self.attr_indexes.invalidate_all()
        if dropped:
            _PI.invalidate(dropped)

    invalidate_all = bump_all

    def on_event(self, db: "TemporalDatabase", event: Event) -> None:
        """Translate one completed operation into generation bumps.

        Called from the database's emission point, *before* external
        observers run, so observer callbacks never see stale caches.
        """
        self.bump_oid(event.oid)
        if event.kind in (
            EventKind.CREATE, EventKind.MIGRATE, EventKind.DELETE
        ):
            touched = set(db.isa.superclasses(event.class_name))
            if event.from_class:
                touched |= db.isa.superclasses(event.from_class)
            for class_name in touched:
                self.bump_class(class_name)
        # UPDATE / CORRECT rewrite one object's history: extents and
        # membership intervals are untouched, the oid bump suffices.
        self.attr_indexes.on_event(db, event)

    # ------------------------------------------------ batch suspension

    def suspend(self) -> None:
        """Enter batch mode: bypass every table, defer maintenance.

        While suspended, lookups return ``None`` without consulting (or
        counting) the tables and stores are dropped -- mutations are not
        bumping generations, so a pre-batch entry could otherwise
        validate against state it no longer describes.  The caller owns
        the deferred event list and must hand it to :meth:`resume`.
        """
        self.suspended = True
        self.attr_indexes.suspended = True

    def resume(
        self, db: "TemporalDatabase", events: "list[Event] | None"
    ) -> bool:
        """Exit batch mode and reconcile with the batched mutations.

        *events* is the ordered event list deferred during the batch;
        ``None`` means the batch was abandoned (rollback mid-batch) and
        everything drops.  Returns True when the attribute-index layer
        chose the wholesale drop (lazy rebuild) over the per-oid delta.

        The delta is coalesced: an oid updated 500 times in the batch
        costs one generation bump and one posting rederive, not 500.
        """
        self.suspended = False
        self.attr_indexes.suspended = False
        if events is None:
            self.bump_all()
            return True
        # oid -> set of touched attribute names, or None once a
        # structural event (CREATE/MIGRATE/DELETE) requires rederiving
        # the oid in every built index.
        touched_oids: dict[OID, set[str] | None] = {}
        touched_classes: set[str] = set()
        for event in events:
            if event.kind in (EventKind.UPDATE, EventKind.CORRECT):
                attrs = touched_oids.setdefault(event.oid, set())
                if attrs is not None and event.attribute:
                    attrs.add(event.attribute)
            else:
                touched_oids[event.oid] = None
                touched_classes |= db.isa.superclasses(event.class_name)
                if event.from_class:
                    touched_classes |= db.isa.superclasses(
                        event.from_class
                    )
        for class_name in touched_classes:
            self.bump_class(class_name)
        for oid in touched_oids:
            self.bump_oid(oid)
        return self.attr_indexes.apply_delta(db, touched_oids)

    # ------------------------------------------------------------ pi

    def get_pi(self, class_name: str, t: int) -> frozenset[OID] | None:
        if not perf.is_enabled or self.suspended:
            return None
        entry = self._pi.get((class_name, t))
        if (
            entry is not None
            and entry[0] == self._global_gen
            and entry[1] == self.class_generation(class_name)
        ):
            _PI.hit()
            return entry[2]
        _PI.miss()
        return None

    def put_pi(
        self, class_name: str, t: int, extent: frozenset[OID]
    ) -> None:
        if not perf.is_enabled or self.suspended:
            return
        if len(self._pi) >= CACHE_LIMIT:
            _PI.invalidate(len(self._pi))
            self._pi.clear()
        self._pi[(class_name, t)] = (
            self._global_gen, self.class_generation(class_name), extent
        )

    # ----------------------------------------------------- membership

    def get_membership(
        self, class_name: str, oid: OID, now: int
    ) -> IntervalSet | None:
        if not perf.is_enabled or self.suspended:
            return None
        entry = self._membership.get((class_name, oid))
        if (
            entry is not None
            and entry[0] == self._global_gen
            and entry[1] == self.class_generation(class_name)
            and entry[2] == self.oid_generation(oid)
            and entry[3] == now
        ):
            _MEMBERSHIP.hit()
            return entry[4]
        _MEMBERSHIP.miss()
        return None

    def put_membership(
        self, class_name: str, oid: OID, now: int, times: IntervalSet
    ) -> None:
        if not perf.is_enabled or self.suspended:
            return
        if len(self._membership) >= CACHE_LIMIT:
            _MEMBERSHIP.invalidate(len(self._membership))
            self._membership.clear()
        self._membership[(class_name, oid)] = (
            self._global_gen,
            self.class_generation(class_name),
            self.oid_generation(oid),
            now,
            times,
        )

    # ------------------------------------------------------- snapshot

    def get_snapshot(
        self, oid: OID, t: int, now: int
    ) -> RecordValue | None:
        if not perf.is_enabled or self.suspended:
            return None
        entry = self._snapshot.get((oid, t))
        if (
            entry is not None
            and entry[0] == self._global_gen
            and entry[1] == self.oid_generation(oid)
            and entry[2] == now
        ):
            _SNAPSHOT.hit()
            return entry[3]
        _SNAPSHOT.miss()
        return None

    def put_snapshot(
        self, oid: OID, t: int, now: int, record: RecordValue
    ) -> None:
        if not perf.is_enabled or self.suspended:
            return
        if len(self._snapshot) >= CACHE_LIMIT:
            _SNAPSHOT.invalidate(len(self._snapshot))
            self._snapshot.clear()
        self._snapshot[(oid, t)] = (
            self._global_gen, self.oid_generation(oid), now, record
        )

    # -------------------------------------------------- stabbing index

    def stabbing_index(
        self, db: "TemporalDatabase", class_name: str
    ) -> IntervalStabbingIndex:
        """The extent index for *class_name*, rebuilt when stale.

        Stale = the class generation or global generation moved (the
        membership intervals changed), or the clock advanced (the index
        stores moving intervals resolved at build time).
        """
        key = (
            self._global_gen,
            self.class_generation(class_name),
            db.now,
        )
        entry = self._indexes.get(class_name)
        if entry is not None and entry[:3] == key:
            _INDEX.hit()
            return entry[3]
        _INDEX.miss()
        with obs.span("cache.rebuild", index="stabbing", cls=class_name):
            index = extent_index(db, class_name)
        self._indexes[class_name] = (*key, index)
        return index

    # ---------------------------------------------------------- misc

    def sizes(self) -> dict[str, int]:
        """Current entry counts (diagnostics)."""
        return {
            "pi": len(self._pi),
            "membership": len(self._membership),
            "snapshot": len(self._snapshot),
            "indexes": len(self._indexes),
            "attr_indexes": len(self.attr_indexes.names()),
        }

    def __repr__(self) -> str:
        sizes = self.sizes()
        body = ", ".join(f"{k}={v}" for k, v in sizes.items())
        return f"DatabaseCaches({body}, global_gen={self._global_gen})"
