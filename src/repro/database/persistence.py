"""JSON persistence for whole databases.

Serializes the clock, the ISA DAG, every class (signature, c-attribute
values, ``ext``/``proper-ext`` histories) and every object (lifespan,
value, retained histories, class history) into a single JSON document,
and rebuilds an equivalent :class:`TemporalDatabase` from it.

The encoding is self-describing: every non-JSON-native value is a
``{"$kind": ...}`` object (oid, null, set, record, temporal value,
interval endpoint "now").  Round-tripping preserves the engine state
exactly; ``tests/test_persistence.py`` checks
``check_database(load(dump(db)))`` stays clean and all queries agree.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import PersistenceError
from repro.objects.object import TemporalObject
from repro.schema.attribute import Attribute
from repro.schema.class_def import ClassSignature
from repro.schema.history import _MembershipTrack
from repro.schema.metaclass import Metaclass
from repro.schema.method import MethodSignature
from repro.temporal.instants import NOW, Now
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.types.parser import format_type, parse_type
from repro.values.null import NULL, Null
from repro.values.oid import OID
from repro.values.records import RecordValue

_FORMAT = "t-chimera/1"


# -- value encoding ------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one model value as JSON-serializable data."""
    if isinstance(value, Null):
        return {"$kind": "null"}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, OID):
        return {
            "$kind": "oid",
            "serial": value.serial,
            "hierarchy": value.hierarchy,
        }
    if isinstance(value, (set, frozenset)):
        return {"$kind": "set", "items": [encode_value(v) for v in value]}
    if isinstance(value, (list, tuple)):
        return {"$kind": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, RecordValue):
        return {
            "$kind": "record",
            "fields": {k: encode_value(v) for k, v in value.items()},
        }
    if isinstance(value, TemporalValue):
        return {
            "$kind": "temporal",
            "pairs": [
                {
                    "start": interval.start,
                    "end": "now" if isinstance(interval.end, Now)
                    else interval.end,
                    "value": encode_value(carried),
                }
                for interval, carried in value.pairs()
            ],
        }
    raise PersistenceError(f"cannot encode value {value!r}")


def decode_value(data: Any, segments=None) -> Any:
    """Inverse of :func:`encode_value`.

    *segments* is a :class:`repro.database.segments.SegmentStore` used
    to resolve ``"cold"`` references in segment-backed temporal values
    (checkpoint documents written with a spill writer).  Without one,
    a cold reference is an error -- the caller is reading a checkpoint
    without its segment artifacts.
    """
    if isinstance(data, (bool, int, float, str)) or data is None:
        return data
    if not isinstance(data, dict) or "$kind" not in data:
        raise PersistenceError(f"malformed encoded value {data!r}")
    kind = data["$kind"]
    if kind == "null":
        return NULL
    if kind == "oid":
        return OID(data["serial"], data.get("hierarchy", ""))
    if kind == "set":
        return frozenset(decode_value(v, segments) for v in data["items"])
    if kind == "list":
        return tuple(decode_value(v, segments) for v in data["items"])
    if kind == "record":
        return RecordValue(
            {k: decode_value(v, segments) for k, v in data["fields"].items()}
        )
    if kind == "temporal":
        cold = data.get("cold")
        if cold:
            if segments is None:
                raise PersistenceError(
                    "segment-backed temporal value but no segment store "
                    f"(cold ref {cold.get('segment')!r})"
                )
            from repro.database.segments import SegmentedTemporalValue

            reader = segments.reader(cold["segment"])
            hot = [
                [
                    pair["start"],
                    NOW if pair["end"] == "now" else pair["end"],
                    decode_value(pair["value"], segments),
                ]
                for pair in data["pairs"]
            ]
            return SegmentedTemporalValue(
                hot, reader.runs_for(cold["key"]), reader
            )
        result = TemporalValue()
        for pair in data["pairs"]:
            end = NOW if pair["end"] == "now" else pair["end"]
            result.put(
                Interval(pair["start"], end),
                decode_value(pair["value"], segments),
            )
        return result
    raise PersistenceError(f"unknown value kind {kind!r}")


def _encode_interval(interval: Interval) -> Any:
    if interval.is_empty:
        return None
    return {
        "start": interval.start,
        "end": "now" if isinstance(interval.end, Now) else interval.end,
    }


def _decode_interval(data: Any) -> Interval:
    if data is None:
        return Interval.empty()
    end = NOW if data["end"] == "now" else data["end"]
    return Interval(data["start"], end)


def _encode_track(track: _MembershipTrack) -> Any:
    return {
        "sets": encode_value(track.sets),
        "spans": [
            {
                "oid": encode_value(oid),
                "intervals": [_encode_interval(i) for i in spans],
            }
            for oid, spans in track._spans.items()
        ],
    }


def _decode_track(data: Any) -> _MembershipTrack:
    track = _MembershipTrack()
    track.sets = decode_value(data["sets"])
    for entry in data["spans"]:
        oid = decode_value(entry["oid"])
        track._spans[oid] = [
            _decode_interval(i) for i in entry["intervals"]
        ]
    return track


# -- database encoding --------------------------------------------------------------


def _encode_attr(obj, kind: str, name: str, value: Any, segments) -> Any:
    """Encode one object attribute, spilling cold history if a segment
    writer is active and the value qualifies."""
    if segments is not None and isinstance(value, TemporalValue):
        spec = segments.spill(obj, kind, name, value)
        if spec is not None:
            return spec
    return encode_value(value)


def database_to_json(db, segments=None) -> str:
    """Serialize *db* to a JSON string.

    With *segments* (a :class:`repro.database.segments.SegmentWriter`),
    long temporal attribute histories spill their cold prefix into the
    writer and the document records only the hot tail plus a cold
    reference.  Without one (plain dumps, ``repro restore -o``), every
    history -- including currently segment-backed ones -- is inlined in
    full.
    """
    doc = {
        "format": _FORMAT,
        "now": db.now,
        # The generator's own counter, not max(live serials)+1: a
        # deleted highest-oid object must never get its oid re-issued
        # after a round trip (Def. 5.6, OID-UNIQUENESS).
        "next_oid": db._oids.next_serial,
        "classes": [
            {
                "name": cls.name,
                "parents": sorted(db.isa.parents(cls.name)),
                "created_at": cls.lifespan.start,
                "lifespan": _encode_interval(cls.lifespan),
                "attributes": [
                    {
                        "name": a.name,
                        "type": format_type(a.type),
                        "immutable": a.immutable,
                        "declared_at": a.declared_at,
                    }
                    for a in cls.attributes.values()
                ],
                "retired_attributes": [
                    {
                        "name": a.name,
                        "type": format_type(a.type),
                        "immutable": a.immutable,
                        "declared_at": a.declared_at,
                        "retired_at": retired_at,
                    }
                    for retirements in cls.retired_attributes.values()
                    for a, retired_at in retirements
                ],
                "methods": [
                    {
                        "name": m.name,
                        "inputs": [format_type(t) for t in m.inputs],
                        "output": format_type(m.output),
                    }
                    for m in cls.methods.values()
                ],
                "c_attributes": [
                    {
                        "name": a.name,
                        "type": format_type(a.type),
                        "immutable": a.immutable,
                        "declared_at": a.declared_at,
                    }
                    for a in cls.c_attributes.values()
                ],
                "c_attr_values": {
                    name: encode_value(value)
                    for name, value in cls.history.c_attr_values.items()
                },
                "ext": _encode_track(cls.history._ext),
                "proper_ext": _encode_track(cls.history._proper_ext),
            }
            for cls in db.classes()
        ],
        "objects": [
            {
                "oid": encode_value(obj.oid),
                "lifespan": _encode_interval(obj.lifespan),
                "value": {
                    name: _encode_attr(obj, "v", name, v, segments)
                    for name, v in obj.value.items()
                },
                "retained": {
                    name: _encode_attr(obj, "r", name, v, segments)
                    for name, v in obj.retained.items()
                },
                "class_history": encode_value(obj.class_history),
            }
            for obj in db.objects()
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def database_from_json(text: str, segments=None):
    """Rebuild a database from :func:`database_to_json` output.

    *segments* (a :class:`repro.database.segments.SegmentStore`) lets
    cold references in the document resolve to segment-backed values.
    """
    from repro.database.database import TemporalDatabase
    from repro.values.oid import OidGenerator

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from exc
    if doc.get("format") != _FORMAT:
        raise PersistenceError(
            f"unsupported format {doc.get('format')!r}; expected "
            f"{_FORMAT!r}"
        )
    db = TemporalDatabase(start_time=doc["now"])
    # Older documents recorded max(live serials)+1 here; newer ones
    # persist the generator counter itself, so a deleted top oid stays
    # retired forever.
    fallback_next = max(
        (
            obj["oid"]["serial"]
            for obj in doc.get("objects", ())
            if isinstance(obj.get("oid"), dict)
        ),
        default=0,
    ) + 1
    db._oids = OidGenerator(
        max(doc.get("next_oid", 1), fallback_next)
    )

    # Classes must be added superclasses-first.
    pending = {entry["name"]: entry for entry in doc["classes"]}
    ordered: list[dict] = []
    resolved: set[str] = set()
    while pending:
        progressed = False
        for name in list(pending):
            entry = pending[name]
            if all(p in resolved for p in entry["parents"]):
                ordered.append(entry)
                resolved.add(name)
                del pending[name]
                progressed = True
        if not progressed:
            raise PersistenceError(
                f"cyclic or dangling parents among {sorted(pending)}"
            )

    for entry in ordered:
        db.isa.add_class(entry["name"], entry["parents"])
        cls = ClassSignature(
            entry["name"],
            attributes=[
                Attribute(
                    a["name"],
                    parse_type(a["type"]),
                    a.get("immutable", False),
                    a.get("declared_at", 0),
                )
                for a in entry["attributes"]
            ],
            methods=[
                MethodSignature(
                    m["name"],
                    tuple(parse_type(t) for t in m["inputs"]),
                    parse_type(m["output"]),
                )
                for m in entry["methods"]
            ],
            c_attributes=[
                Attribute(
                    a["name"],
                    parse_type(a["type"]),
                    a.get("immutable", False),
                    a.get("declared_at", 0),
                )
                for a in entry["c_attributes"]
            ],
            created_at=entry.get("created_at", 0),
        )
        cls.lifespan = _decode_interval(entry["lifespan"])
        for retired in entry.get("retired_attributes", ()):
            cls.retired_attributes.setdefault(
                retired["name"], []
            ).append(
                (
                    Attribute(
                        retired["name"],
                        parse_type(retired["type"]),
                        retired.get("immutable", False),
                        retired.get("declared_at", 0),
                    ),
                    retired["retired_at"],
                )
            )
        cls.history.c_attr_values = {
            name: decode_value(value)
            for name, value in entry["c_attr_values"].items()
        }
        cls.history._ext = _decode_track(entry["ext"])
        cls.history._proper_ext = _decode_track(entry["proper_ext"])
        db._classes[entry["name"]] = cls
        metaclass = Metaclass(cls)
        db._metaclasses[metaclass.name] = metaclass

    for entry in doc["objects"]:
        oid = decode_value(entry["oid"])
        lifespan = _decode_interval(entry["lifespan"])
        class_history = decode_value(entry["class_history"])
        obj = TemporalObject.__new__(TemporalObject)
        obj.oid = oid
        obj.lifespan = lifespan
        obj.value = {
            name: decode_value(v, segments)
            for name, v in entry["value"].items()
        }
        obj.retained = {
            name: decode_value(v, segments)
            for name, v in entry["retained"].items()
        }
        obj.class_history = class_history
        db._objects[oid] = obj

    return db
