"""The T_Chimera engine: an executable semantics for the model.

* :mod:`repro.database.database` -- :class:`TemporalDatabase`: schema
  definition (classes, metaclasses, ISA), object creation, attribute
  updates, object migration and deletion, all stamped by the database
  clock and maintaining the model's invariants;
* :mod:`repro.database.integrity` -- checkers for Invariants 5.1, 5.2,
  6.1 and 6.2, Definition 5.6 (OID-uniqueness, referential integrity)
  and full-database consistency reports;
* :mod:`repro.database.transactions` -- atomic multi-operation batches
  with rollback;
* :mod:`repro.database.persistence` -- JSON serialization of a whole
  database;
* :mod:`repro.database.wal` -- crash-safe write-ahead journal
  (CRC-framed logical records, atomic checkpoints);
* :mod:`repro.database.recovery` -- checkpoint + journal-replay
  recovery with graceful degradation on corrupt tails.
"""

from repro.database.database import TemporalDatabase
from repro.database.integrity import (
    IntegrityReport,
    check_database,
    check_extent_inclusion,
    check_hierarchy_disjointness,
    check_invariant_5_1,
    check_invariant_5_2,
    check_oid_uniqueness,
    check_referential_integrity,
)
from repro.database.transactions import Transaction
from repro.database.persistence import database_from_json, database_to_json
from repro.database.recovery import (
    RecoveryReport,
    open_database,
    recover,
)
from repro.database.wal import Journal

__all__ = [
    "Journal",
    "RecoveryReport",
    "open_database",
    "recover",
    "TemporalDatabase",
    "IntegrityReport",
    "check_database",
    "check_invariant_5_1",
    "check_invariant_5_2",
    "check_extent_inclusion",
    "check_hierarchy_disjointness",
    "check_oid_uniqueness",
    "check_referential_integrity",
    "Transaction",
    "database_to_json",
    "database_from_json",
]
