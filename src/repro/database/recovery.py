"""Crash recovery: checkpoint + journal replay with graceful degradation.

:func:`recover` rebuilds a :class:`TemporalDatabase` from a durability
directory (``journal.wal`` plus ``checkpoint-<lsn>.json`` files):

1. load the newest *valid* checkpoint (a corrupt newest checkpoint
   falls back to an older surviving one -- the checkpointer deletes old
   snapshots only after the new one is durable);
2. scan the journal's longest valid prefix (CRC-framed records; a torn
   or bit-flipped tail is salvaged, not fatal);
3. drop a trailing uncommitted transaction (``begin`` without
   ``commit``);
4. replay the remaining records with LSN greater than the checkpoint's
   through the ordinary public API, re-validating every operation.

The result is a :class:`RecoveryReport` -- never an exception for
*corruption*; ``report.ok`` is False only when no database can be
produced at all (unrecoverable checkpoint loss: no valid checkpoint
and a journal that does not start at genesis).

:func:`open_database` is the high-level entry point applications use:
it recovers (or creates) the database, repairs a salvaged journal tail,
and re-attaches the journal so subsequent operations keep journaling.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro import perf
from repro.obs import spans as obs
from repro.database.wal import (
    CHECKPOINT_FORMAT,
    Journal,
    TailStatus,
    checkpoint_lsn,
    drop_uncommitted,
    iter_frames,
    list_checkpoints,
    scan_frames,
)
from repro.errors import RecoveryError, TChimeraError
from repro.faults.fs import RealFS
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.values.oid import OID

JOURNAL_NAME = "journal.wal"

_RECOVERIES = perf.metric("wal.recoveries")
_REPLAYED = perf.metric("wal.records_replayed")
_SALVAGED = perf.metric("wal.records_salvaged")
_DROPPED = perf.metric("wal.records_dropped")


@dataclass
class RecoveryReport:
    """Structured outcome of one recovery attempt."""

    directory: str
    #: False only on unrecoverable checkpoint loss.
    ok: bool = True
    #: checkpoint file the database was loaded from (None: genesis replay).
    checkpoint: str | None = None
    checkpoint_lsn: int = 0
    #: checkpoint files that existed but failed to load.
    corrupt_checkpoints: list[str] = field(default_factory=list)
    #: records parsed out of the journal's valid prefix.
    records_scanned: int = 0
    #: records skipped because the checkpoint already covers them.
    records_skipped: int = 0
    #: records replayed into the recovered database (salvaged).
    records_applied: int = 0
    #: data records dropped as an uncommitted transaction suffix.
    records_dropped_uncommitted: int = 0
    #: the valid prefix ended inside an open transaction (a dangling
    #: ``begin``) -- true even when the transaction held zero data
    #: records, in which case records_dropped_uncommitted is 0.
    uncommitted_txn: bool = False
    #: a committed record failed to replay mid-stream; the database
    #: reflects only the prefix before it.  :func:`open_database`
    #: refuses to resume journaling in this state.
    replay_divergence: bool = False
    #: bytes beyond the journal's longest valid prefix (corrupt tail).
    dropped_bytes: int = 0
    #: byte offset where the valid journal prefix ends.
    valid_end: int = 0
    #: why the journal scan stopped early, when it did.
    tail_error: str | None = None
    #: LSN of the last operation reflected in the recovered database.
    last_lsn: int = 0
    errors: list[str] = field(default_factory=list)
    #: recovered database summary (when ok).
    now: int | None = None
    objects: int | None = None
    classes: int | None = None

    @property
    def salvaged_tail(self) -> bool:
        """True when the journal had a corrupt tail that was cut off."""
        return self.dropped_bytes > 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "ok": self.ok,
            "checkpoint": self.checkpoint,
            "checkpoint_lsn": self.checkpoint_lsn,
            "corrupt_checkpoints": list(self.corrupt_checkpoints),
            "records_scanned": self.records_scanned,
            "records_skipped": self.records_skipped,
            "records_applied": self.records_applied,
            "records_dropped_uncommitted":
                self.records_dropped_uncommitted,
            "uncommitted_txn": self.uncommitted_txn,
            "replay_divergence": self.replay_divergence,
            "dropped_bytes": self.dropped_bytes,
            "valid_end": self.valid_end,
            "tail_error": self.tail_error,
            "last_lsn": self.last_lsn,
            "errors": list(self.errors),
            "now": self.now,
            "objects": self.objects,
            "classes": self.classes,
        }

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"recovery of {self.directory}: "
            + ("OK" if self.ok else "FAILED"),
            f"  checkpoint        {self.checkpoint or '(none: genesis replay)'}"
            + (f" @ lsn {self.checkpoint_lsn}" if self.checkpoint else ""),
            f"  journal records   {self.records_scanned} scanned, "
            f"{self.records_skipped} skipped (covered by checkpoint), "
            f"{self.records_applied} applied",
            f"  uncommitted tail  {self.records_dropped_uncommitted} "
            "record(s) dropped",
            f"  corrupt tail      {self.dropped_bytes} byte(s) dropped"
            + (f" ({self.tail_error})" if self.tail_error else ""),
        ]
        if self.corrupt_checkpoints:
            lines.append(
                "  corrupt ckpts     "
                + ", ".join(self.corrupt_checkpoints)
            )
        if self.replay_divergence:
            lines.append(
                "  replay DIVERGED   database reflects only the "
                f"prefix through lsn {self.last_lsn}"
            )
        if self.ok:
            lines.append(
                f"  database          now={self.now}, "
                f"{self.objects} object(s), {self.classes} class(es), "
                f"last lsn {self.last_lsn}"
            )
        for error in self.errors:
            lines.append(f"  error             {error}")
        return "\n".join(lines)


# -- record replay ---------------------------------------------------------------


def apply_record(db: Any, record: dict[str, Any]) -> Any:
    """Replay one journal record through the public API.

    For ``genesis`` records *db* may be None; the created database is
    returned (callers thread it).  Raises :class:`RecoveryError` when
    the record cannot be replayed (which the recovery loop converts
    into a report error).
    """
    from repro.database.database import TemporalDatabase
    from repro.database.persistence import decode_value

    kind = record.get("kind")
    if kind == "genesis":
        return TemporalDatabase(start_time=record.get("start_time", 0))
    if db is None:
        raise RecoveryError(
            f"record {record.get('lsn')}: no database to replay into "
            "(missing checkpoint and genesis)"
        )
    try:
        if kind == "tick":
            db.tick(record.get("steps", 1))
        elif kind == "define_class":
            db.define_class(
                record["name"],
                attributes=[
                    Attribute(n, t, immutable)
                    for n, t, immutable in record.get("attributes", [])
                ],
                methods=[
                    MethodSignature(
                        n, tuple(inputs), output
                    )
                    for n, inputs, output in record.get("methods", [])
                ],
                parents=record.get("parents", []),
                c_attributes=[
                    Attribute(n, t, immutable)
                    for n, t, immutable in record.get("c_attributes", [])
                ],
                c_attr_values={
                    name: decode_value(value)
                    for name, value in record.get(
                        "c_attr_values", {}
                    ).items()
                },
            )
        elif kind == "add_attribute":
            name, type_text, immutable = record["attribute"]
            db.add_attribute(
                record["class"], Attribute(name, type_text, immutable)
            )
        elif kind == "remove_attribute":
            db.remove_attribute(record["class"], record["attribute"])
        elif kind == "drop_class":
            db.drop_class(record["class"])
        elif kind == "create":
            expected = decode_value(record["oid"])
            minted = db.create_object(
                record["class"],
                {
                    name: decode_value(value)
                    for name, value in record.get("args", {}).items()
                },
            )
            if minted != expected:
                raise RecoveryError(
                    f"replayed create minted {minted!r}, journal "
                    f"recorded {expected!r} (divergent replay)"
                )
        elif kind == "update":
            db.update_attribute(
                decode_value(record["oid"]),
                record["attribute"],
                decode_value(record["value"]),
            )
        elif kind == "migrate":
            db.migrate(
                decode_value(record["oid"]),
                record["class"],
                {
                    name: decode_value(value)
                    for name, value in record.get("args", {}).items()
                },
            )
        elif kind == "delete":
            # Replay with the recorded flag: the original delete
            # succeeded with it, so replay must too, and any semantics
            # attached to non-forced deletes stay faithful.
            db.delete_object(
                decode_value(record["oid"]),
                force=bool(record.get("force", False)),
            )
        elif kind == "correct":
            start, end = record["window"]
            db.correct_attribute(
                decode_value(record["oid"]),
                record["attribute"],
                start,
                end,
                decode_value(record["value"]),
            )
        else:
            raise RecoveryError(
                f"record {record.get('lsn')}: unknown kind {kind!r}"
            )
    except RecoveryError:
        raise
    except TChimeraError as exc:
        raise RecoveryError(
            f"record {record.get('lsn')} ({kind}) failed to replay: "
            f"{exc}"
        ) from exc
    return db


# -- recovery ---------------------------------------------------------------------


def recover(
    directory: str | os.PathLike[str],
    fs: Any = None,
    stop_lsn: int | None = None,
    stop_tick: int | None = None,
) -> tuple[Any, RecoveryReport]:
    """Rebuild the database persisted under *directory*.

    Read-only: neither the journal nor the checkpoints are modified
    (use :func:`open_database` to also repair the tail and resume
    journaling).  Returns ``(db, report)``; ``db`` is None iff
    ``report.ok`` is False.

    *stop_lsn* / *stop_tick* turn the replay into a point-in-time
    restore (:func:`repro.replication.restore_to` is the public entry
    point): replay halts before the first record past the target --
    records with ``lsn > stop_lsn``, or the ``tick`` that would advance
    the clock beyond *stop_tick* -- and checkpoints already past the
    target are skipped (not treated as corrupt) in favour of an older
    surviving one.  A target that predates every retained checkpoint
    and the journal's genesis is unrecoverable (``report.ok`` False).
    """
    from repro.database.persistence import database_from_json

    fs = fs if fs is not None else RealFS()
    directory = str(directory)
    report = RecoveryReport(directory=directory)
    _RECOVERIES.add()

    # 1. Newest valid checkpoint (fall back through corrupt ones, and
    #    past ones newer than the restore target).
    db = None
    for name in reversed(list_checkpoints(fs, directory)):
        path = os.path.join(directory, name)
        if stop_lsn is not None and checkpoint_lsn(name) > stop_lsn:
            continue  # checkpoint is beyond the restore target
        try:
            doc = json.loads(fs.read(path).decode("utf-8"))
            if doc.get("format") != CHECKPOINT_FORMAT:
                raise RecoveryError(
                    f"unsupported checkpoint format {doc.get('format')!r}"
                )
            if (
                stop_tick is not None
                and int(doc["database"].get("now", 0)) > stop_tick
            ):
                continue  # checkpointed clock is beyond the target
            store = None
            seg_name = doc.get("segments")
            if seg_name is not None:
                # The checkpoint references a cold-segment artifact:
                # verify it end to end (magic, footer, every page CRC)
                # before trusting the checkpoint.  A missing or corrupt
                # segment demotes this checkpoint to corrupt and the
                # loop falls back to an older generation.
                from repro.database import segments as seg

                store = seg.SegmentStore(fs, directory)
                store.verify(seg_name)
            db = database_from_json(
                json.dumps(doc["database"]), segments=store
            )
            if seg_name is not None:
                from repro.database import segments as seg

                db.segment_values = seg.count_segment_values(db)
            report.checkpoint = path
            report.checkpoint_lsn = int(doc["lsn"])
            report.last_lsn = report.checkpoint_lsn
            break
        except Exception as exc:
            report.corrupt_checkpoints.append(name)
            report.errors.append(f"checkpoint {name}: {exc}")

    # 2. Journal scan (longest valid prefix).
    journal_path = os.path.join(directory, JOURNAL_NAME)
    if fs.exists(journal_path):
        records, tail = scan_frames(fs.read(journal_path))
    else:
        records, tail = [], TailStatus(0, 0, "journal file missing")
        report.errors.append("journal file missing")
    report.records_scanned = len(records)
    report.valid_end = tail.valid_end
    report.dropped_bytes = tail.dropped_bytes
    report.tail_error = tail.error

    # 3. Trailing uncommitted transaction.
    committed, dropped, open_txn = drop_uncommitted(records)
    report.records_dropped_uncommitted = dropped
    report.uncommitted_txn = open_txn

    # 4. Replay records beyond the checkpoint (up to the restore
    #    target, when one was given).
    with obs.span("recovery.replay", records=len(committed)) as replay_sp:
        for record in committed:
            kind = record.get("kind")
            if kind in ("begin", "commit"):
                continue
            if record["lsn"] <= report.checkpoint_lsn:
                report.records_skipped += 1
                continue
            if stop_lsn is not None and record["lsn"] > stop_lsn:
                break
            if (
                stop_tick is not None
                and kind == "tick"
                and db is not None
                and db.now + record.get("steps", 1) > stop_tick
            ):
                break
            try:
                db = apply_record(db, record)
            except RecoveryError as exc:
                if db is None:
                    report.ok = False
                    report.errors.append(str(exc))
                    _DROPPED.add(
                        report.records_scanned - report.records_applied
                    )
                    return None, report
                # A mid-stream replay failure is state divergence we
                # cannot hide: stop at the last good record (longest
                # valid prefix semantics at the logical level too) and
                # flag it so open_database refuses to resume appends
                # against a journal that no longer matches the
                # recovered state.
                report.replay_divergence = True
                report.errors.append(str(exc))
                break
            report.records_applied += 1
            report.last_lsn = record["lsn"]
        replay_sp.annotate(applied=report.records_applied)

    if db is None:
        # No checkpoint and no genesis record: nothing to rebuild from
        # (or the restore target predates every retained record).
        report.ok = False
        report.errors.append(
            "unrecoverable: no valid checkpoint and the journal has no "
            "genesis record"
            + (
                " at or before the restore target"
                if stop_lsn is not None or stop_tick is not None
                else ""
            )
        )
        return None, report
    if stop_tick is not None and db.now > stop_tick:
        # Even the oldest surviving state is past the requested tick.
        report.ok = False
        report.errors.append(
            f"unrecoverable: oldest retained state is at tick "
            f"{db.now}, past the restore target {stop_tick}"
        )
        return None, report

    _REPLAYED.add(report.records_applied)
    _SALVAGED.add(report.records_applied)
    _DROPPED.add(dropped)
    report.now = db.now
    report.objects = len(db)
    report.classes = len(tuple(db.classes()))
    return db, report


def open_database(
    directory: str | os.PathLike[str],
    fs: Any = None,
    start_time: int = 0,
    sync: str = "always",
) -> tuple[Any, RecoveryReport]:
    """Open (recovering) or create a journaled database in *directory*.

    On an empty directory: creates a fresh database whose journal
    starts with a genesis record.  Otherwise: recovers, truncates any
    corrupt journal tail and any dangling open transaction so appends
    resume from the last committed record, and re-attaches the
    journal.  Raises :class:`RecoveryError` when recovery is
    impossible, or when replay diverged mid-stream (the journal no
    longer matches any recoverable state; it is left untouched for
    inspection via :func:`recover`).
    """
    from repro.database.database import TemporalDatabase

    fs = fs if fs is not None else RealFS()
    directory = str(directory)
    if isinstance(fs, RealFS):
        os.makedirs(directory, exist_ok=True)
    journal_path = os.path.join(directory, JOURNAL_NAME)

    fresh = not fs.exists(journal_path) and not list_checkpoints(
        fs, directory
    )
    if fresh:
        journal = Journal(journal_path, fs=fs, sync=sync)
        db = TemporalDatabase(start_time=start_time, journal=journal)
        report = RecoveryReport(directory=directory)
        report.now = db.now
        report.objects = 0
        report.classes = 0
        return db, report

    db, report = recover(directory, fs=fs)
    if db is None:
        raise RecoveryError(
            "cannot open database: " + "; ".join(report.errors)
        )
    if report.replay_divergence:
        # The recovered database stops at the record before the one
        # that failed to replay, but that record and everything after
        # it are still physically in the journal.  Resuming appends
        # here would mint duplicate LSNs and make the *next* recovery
        # deterministically re-diverge, silently discarding all newer
        # committed work.  Refuse; the journal is left untouched for
        # forensics and read-only :func:`recover` still works.
        raise RecoveryError(
            "cannot re-attach journal: replay diverged from the "
            "on-disk log ("
            + "; ".join(report.errors)
            + ")"
        )
    journal = Journal(journal_path, fs=fs, sync=sync)
    if report.uncommitted_txn:
        # The valid prefix ends inside an open transaction.  Truncate
        # to the end of the last *committed* record -- this also cuts
        # any corrupt tail, since _committed_end only walks the valid
        # prefix.  Keyed on the dangling ``begin`` itself, not on the
        # dropped-record count: a bare ``begin`` with zero data records
        # must still be cut, or the next fsynced autocommit appends
        # land inside a transaction that recovery will drop (or, worse,
        # a later ``commit`` marker resurrects the dead records).
        journal.truncate_tail(_committed_end(fs, journal_path))
    elif report.salvaged_tail:
        journal.truncate_tail(report.valid_end)
    journal.set_next_lsn(report.last_lsn + 1)
    db.attach_journal(journal, genesis=False)
    return db, report


def _committed_end(fs: Any, journal_path: str) -> int:
    """Byte offset right after the last committed record."""
    from repro.database.wal import MAGIC

    end = len(MAGIC)
    in_open_txn = False
    for frame in iter_frames(journal_path, fs=fs):
        kind = frame.kind
        if kind == "begin" and not in_open_txn:
            in_open_txn = True
        elif kind == "commit":
            in_open_txn = False
        if not in_open_txn:
            end = frame.end
    return end
