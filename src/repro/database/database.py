"""The temporal object database.

:class:`TemporalDatabase` executes the model: it owns the clock (the
concrete value of ``now``), the schema (classes with their metaclasses
and the ISA DAG) and the object population, and exposes exactly the
update operations the model's definitions constrain:

* :meth:`define_class` / :meth:`drop_class` -- schema evolution, with
  inheritance merging (Rule 6.1, method variance) checked at
  definition time;
* :meth:`create_object` -- instantiation; registers the oid in the
  ``proper-ext`` of the class and the ``ext`` of all its superclasses
  (Definition 4.1, Invariant 6.1);
* :meth:`update_attribute` -- typed updates; temporal attributes extend
  their history at ``now``, static attributes replace their value,
  immutable attributes refuse changes;
* :meth:`migrate` -- object migration (Section 5.2): static attributes
  dropped without trace, temporal attribute histories retained, extents
  and the object's class history adjusted;
* :meth:`delete_object` -- ends the lifespan (contiguous; no
  reincarnation).

Deletion convention: an operation executed at clock reading ``t`` takes
effect *at* t -- a created object exists at t; a deleted object's last
instant of existence is ``t - 1`` (its extents change at t).  This
keeps ``ext``, lifespans and class histories aligned (Invariant 5.1)
without half-open intervals.

The database implements the :class:`~repro.types.context.TypeContext`
protocol, so it plugs directly into ``[[T]]_t`` membership, the typing
rules and the consistency checkers; and the
:class:`~repro.objects.consistency.SchemaView` protocol for class
lookups.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro import perf
from repro.database.caches import INDEX_MIN_POPULATION, DatabaseCaches
from repro.database.mvcc import MVCCManager
from repro.obs import spans as obs
from repro.database.events import Event, EventKind
from repro.errors import (
    DuplicateClassError,
    InvalidIntervalError,
    LifespanError,
    MigrationError,
    ReferentialIntegrityError,
    SchemaError,
    TypeCheckError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.inheritance.coercion import as_member_of
from repro.inheritance.isa import IsaHierarchy
from repro.inheritance.refinement import (
    merge_inherited_attributes,
    merge_inherited_methods,
)
from repro.objects.object import TemporalObject
from repro.objects.references import oids_in_value
from repro.schema.attribute import Attribute
from repro.schema.class_def import ClassSignature
from repro.schema.metaclass import Metaclass
from repro.schema.method import MethodSignature
from repro.temporal.clock import Clock
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.extension import in_extension
from repro.types.grammar import TemporalType, Type
from repro.values.null import NULL, is_null
from repro.values.oid import OID, OidGenerator
from repro.values.records import RecordValue


class Partitioning:
    """Hash-partitioning of the object population by oid serial.

    The layer is *pure*: it owns no bucket state, only the routing
    function ``oid.serial mod n_partitions``, so it can never go stale
    when the population changes behind its back (transaction rollback
    reassigns ``_objects`` wholesale; persistence restores insert
    directly).  :meth:`split` materializes the buckets for whatever oid
    set the caller is about to fan out -- an O(n) hash pass that is
    noise next to the per-object work it parallelizes.  Partitions are
    deliberately shard-shaped: the same routing function serves the
    scatter-gather executor today (:mod:`repro.database.parallel`) and
    cross-process shards later (ROADMAP item 3).
    """

    __slots__ = ("n_partitions",)

    def __init__(self, n_partitions: int | None = None) -> None:
        if n_partitions is None:
            from repro.database.parallel import default_partitions

            n_partitions = default_partitions()
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.n_partitions = int(n_partitions)

    def partition_of(self, oid: OID) -> int:
        """The partition index owning *oid* (stable for its lifetime)."""
        return oid.serial % self.n_partitions

    def split(self, oids: Iterable[OID]) -> list[list[OID]]:
        """Bucket *oids* by partition; index ``p`` holds partition p."""
        buckets: list[list[OID]] = [
            [] for _ in range(self.n_partitions)
        ]
        for oid in oids:
            buckets[oid.serial % self.n_partitions].append(oid)
        return buckets


class TemporalDatabase:
    """One T_Chimera database: clock + schema + objects."""

    def __init__(
        self,
        start_time: int = 0,
        journal=None,
        n_partitions: int | None = None,
    ) -> None:
        self.clock = Clock(start_time)
        self._isa = IsaHierarchy()
        self._classes: dict[str, ClassSignature] = {}
        self._metaclasses: dict[str, Metaclass] = {}
        self._objects: dict[OID, TemporalObject] = {}
        self._oids = OidGenerator()
        self._observers: list = []
        #: Subscriber failure policy: ``"raise"`` collects exceptions
        #: from observer callbacks and re-raises after *all* observers
        #: ran (a single failure re-raises as itself, several as one
        #: :class:`SubscriberError`); ``"continue"`` logs and goes on.
        self.on_subscriber_error: str = "raise"
        #: Hot-path caches (extents, membership, snapshots, indexes);
        #: invalidated from the event emission points and the schema
        #: evolution operations.  See docs/performance.md.
        self.caches = DatabaseCaches()
        #: Optional write-ahead journal (docs/durability.md).  Every
        #: committed operation appends a replayable record before the
        #: caller regains control.
        self._journal = None
        #: The active :class:`~repro.database.batch.BulkBatch`, or None.
        #: While set, cache maintenance and observer notification are
        #: deferred and journal records land in the group-commit buffer.
        self._batch = None
        #: Oid-hash partitioning of the population (default: one
        #: partition per core); routing for the scatter-gather
        #: executor in :mod:`repro.database.parallel`.
        self.partitioning = Partitioning(n_partitions)
        #: Monotone operation counter, part of :meth:`_state_version`;
        #: lets the parallel worker pool detect that its forked
        #: snapshot went stale.
        self._op_count = 0
        #: The persistent scatter-gather worker pool, lazily forked by
        #: ``parallel.pool_for`` on the first eligible scan.
        self._parallel_pool = None
        #: How many live histories are segment-backed (cold prefix on
        #: disk); maintained by checkpoint spills and recovery, read by
        #: the planner's cold-read penalty.
        self.segment_values = 0
        #: MVCC read snapshots (docs/server.md): open
        #: :class:`~repro.database.mvcc.ReadView` registry plus the
        #: copy-on-write overlays the mutators feed via the
        #: ``before_*`` hooks below.  Hooks are no-ops while no view
        #: is open, so the single-client fast path pays one attribute
        #: read per mutation.
        self.mvcc = MVCCManager(self)
        #: True while a :class:`~repro.database.transactions
        #: .Transaction` is open (view acquisition is refused then).
        self._txn_active = False
        if journal is not None:
            self.attach_journal(journal)

    # ------------------------------------------------------------- durability

    @property
    def journal(self):
        """The attached write-ahead journal, or None."""
        return self._journal

    def attach_journal(self, journal, genesis: bool = True) -> None:
        """Start journaling every subsequent operation to *journal*.

        With *genesis* (the default for a fresh database) an empty
        journal receives a ``genesis`` record carrying the clock start,
        so recovery without any checkpoint can replay from scratch.
        """
        self._journal = journal
        if genesis and journal.is_empty():
            journal.append({"kind": "genesis", "start_time": self.now})

    def checkpoint(self) -> str:
        """Atomically snapshot this database and truncate its journal.

        Returns the checkpoint file path.  Requires an attached
        journal; see :meth:`repro.database.wal.Journal.checkpoint` for
        the crash-safe write protocol.
        """
        from repro.errors import JournalError

        if self._journal is None:
            raise JournalError(
                "checkpoint requires an attached journal"
            )
        return self._journal.checkpoint(self)

    def _journal_op(self, record: dict) -> None:
        if self._journal is not None:
            self._journal.append(record)

    # ------------------------------------------------------ transaction time

    @property
    def transaction_now(self) -> int | None:
        """The current transaction time: the last committed journal
        LSN, or None when no journal is attached (an unjournaled
        database has no transaction-time order)."""
        if self._journal is None:
            return None
        return self._journal.last_lsn

    def as_of(self, lsn: int):
        """The database as believed at transaction time *lsn*.

        The full bitemporal read surface: the returned database (the
        live one at the head, a detached reconstruction otherwise)
        answers every valid-time question -- ``pi`` / ``extent``
        sweeps, ``snapshot_at``, ``membership_times``, queries in all
        five scopes -- about the state as it was recorded then.  See
        :mod:`repro.bitemporal.asof`.
        """
        from repro.bitemporal import asof as asof_mod

        return asof_mod.as_of(self, lsn)

    # ---------------------------------------------------------------- events

    def subscribe(self, callback) -> None:
        """Register *callback* to receive an :class:`Event` after every
        completed create/update/migrate/delete operation."""
        self._observers.append(callback)

    def unsubscribe(self, callback) -> None:
        self._observers.remove(callback)

    def _emit(self, event: Event) -> None:
        self._op_count += 1
        if self._batch is not None:
            # Bulk batch: journal into the group-commit buffer, defer
            # cache maintenance and observer notification to the
            # coalesced reconciliation at batch close.
            if self._journal is not None:
                from repro.database.wal import record_for_event

                self._journal.append(record_for_event(event))
            self._batch.record(event)
            return
        # Caches first: observer callbacks must never read stale state.
        self.caches.on_event(self, event)
        # Journal second: the operation is already applied, and a
        # raising observer must not un-durable it (after-the-fact
        # enforcement wraps operations in a Transaction, whose rollback
        # truncates the journal suffix).
        if self._journal is not None:
            from repro.database.wal import record_for_event

            self._journal.append(record_for_event(event))
        self._notify(event)

    def _notify(self, event: Event) -> None:
        """Run the observer callbacks with failure isolation."""
        failures: list[tuple] = []
        for callback in list(self._observers):
            try:
                callback(self, event)
            except Exception as exc:  # isolate: every observer runs
                failures.append((callback, exc))
        if not failures:
            return
        if self.on_subscriber_error == "continue":
            import logging

            for callback, exc in failures:
                logging.getLogger("repro.events").error(
                    "subscriber %r raised handling %r: %s",
                    callback, event, exc,
                )
            return
        if len(failures) == 1:
            raise failures[0][1]
        from repro.errors import SubscriberError

        raise SubscriberError(event, failures)

    # --------------------------------------------------------------- batches

    @property
    def in_batch(self) -> bool:
        """Whether a bulk batch is currently open."""
        return self._batch is not None

    def batch(self):
        """A bulk-ingestion batch: ``with db.batch(): ...``.

        Inside the block, operations journal into a group-commit
        buffer (one write + one fsync barrier at close instead of one
        per operation), cache and attribute-index maintenance is
        suspended and applied as one coalesced delta at close, and
        observers receive a single :attr:`EventKind.BATCH` event
        carrying the ordered operation list.  See
        :mod:`repro.database.batch` (and docs/performance.md, "Bulk
        ingestion") for semantics, crash behaviour and the
        ``REPRO_NO_BATCH`` ablation.
        """
        from repro.database.batch import BulkBatch

        return BulkBatch(self)

    #: Alias: the ETL-flavoured name for the same context manager.
    bulk_load = batch

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> int:
        """The current time instant."""
        return self.clock.now

    def tick(self, steps: int = 1) -> int:
        """Advance the clock."""
        result = self.clock.tick(steps)
        self._journal_op({"kind": "tick", "steps": steps})
        return result

    def _state_version(self) -> tuple[int, int, int]:
        """A cheap fingerprint of the database state.

        ``(now, cache generation, operation count)`` changes on every
        clock advance, schema evolution (generation bump), committed
        operation, and transaction rollback (``invalidate_all`` bumps
        the generation).  The scatter-gather pool pins its forked
        snapshot to this tuple; a mismatch forces a respawn rather
        than a stale read.
        """
        return (self.now, self.caches._global_gen, self._op_count)

    # ---------------------------------------------------------------- schema

    def define_class(
        self,
        name: str,
        attributes: Iterable[Attribute | tuple[str, Any]] = (),
        methods: Iterable[MethodSignature] = (),
        parents: Iterable[str] = (),
        c_attributes: Iterable[Attribute | tuple[str, Any]] = (),
        c_attr_values: Mapping[str, Any] | None = None,
        c_methods: Iterable[MethodSignature] = (),
    ) -> ClassSignature:
        """Define a class; its lifespan starts at the current time.

        ``attributes`` accepts :class:`Attribute` objects or
        ``(name, type)`` pairs (types may be terms or concrete syntax).
        Inherited attributes and methods are merged in, checking Rule
        6.1 and the method variance rules.  Attribute domains may
        mention the class being defined (e.g. ``subproject:
        temporal(project)`` in class ``project``) and any existing
        class.
        """
        if name in self._classes:
            raise DuplicateClassError(f"class {name!r} already defined")
        parent_list = list(parents)
        parent_signatures = []
        for parent in parent_list:
            parent_cls = self.get_class(parent)
            if not parent_cls.is_alive:
                raise LifespanError(
                    f"cannot inherit from dropped class {parent!r}"
                )
            parent_signatures.append(parent_cls)

        own_attributes = _as_attributes(attributes)
        own_c_attributes = _as_attributes(c_attributes)
        own_methods = {m.name: m for m in methods}

        # Register in the ISA DAG first so refinement checks can use it.
        self._isa.add_class(name, parent_list)
        try:
            merged_attributes = merge_inherited_attributes(
                own_attributes,
                [p.attributes for p in parent_signatures],
                self._isa,
                name,
            )
            merged_methods = merge_inherited_methods(
                own_methods,
                [p.methods for p in parent_signatures],
                self._isa,
                name,
            )
            for attribute in merged_attributes.values():
                self._check_mentioned_classes(attribute.type, name)
        except Exception:
            self._isa_rollback(name)
            raise

        initial_c_values: dict[str, Any] = {}
        provided = dict(c_attr_values or {})
        for c_name, c_attribute in own_c_attributes.items():
            value = provided.pop(c_name, NULL)
            if c_attribute.is_temporal:
                history = TemporalValue()
                history.assign(self.now, value)
                initial_c_values[c_name] = history
            else:
                initial_c_values[c_name] = value
        if provided:
            self._isa_rollback(name)
            raise SchemaError(
                f"class {name!r}: values for undeclared c-attributes "
                f"{sorted(provided)}"
            )

        cls = ClassSignature(
            name,
            attributes=merged_attributes.values(),
            methods=merged_methods.values(),
            c_attributes=own_c_attributes.values(),
            created_at=self.now,
            c_attr_values=initial_c_values,
        )
        self._classes[name] = cls
        metaclass = Metaclass(cls, tuple(c_methods))
        self._metaclasses[metaclass.name] = metaclass
        self.caches.bump_all()
        if self._journal is not None:
            from repro.database.persistence import encode_value
            from repro.types.parser import format_type

            self._journal.append({
                "kind": "define_class",
                "name": name,
                "parents": parent_list,
                "attributes": [
                    [a.name, format_type(a.type), a.immutable]
                    for a in own_attributes.values()
                ],
                "methods": [
                    [
                        m.name,
                        [format_type(t) for t in m.inputs],
                        format_type(m.output),
                    ]
                    for m in own_methods.values()
                ],
                "c_attributes": [
                    [a.name, format_type(a.type), a.immutable]
                    for a in own_c_attributes.values()
                ],
                "c_attr_values": {
                    c_name: encode_value(value)
                    for c_name, value in dict(c_attr_values or {}).items()
                },
            })
        return cls

    def _isa_rollback(self, name: str) -> None:
        # add_class is the only ISA mutation; undo it on definition failure.
        self._isa.retract_class(name)

    def _check_mentioned_classes(self, t: Type, defining: str) -> None:
        for class_name in t.mentioned_classes():
            if class_name != defining and class_name not in self._isa:
                raise UnknownClassError(
                    f"attribute domain mentions unknown class "
                    f"{class_name!r}"
                )

    # ----------------------------------------------------- schema evolution

    def add_attribute(
        self, class_name: str, attribute: Attribute | tuple[str, Any]
    ) -> None:
        """Add an attribute to a class (and its subclasses) at ``now``.

        Existing members get a null slot: a static attribute starts
        null; a temporal one starts recording null at ``now`` (it is
        not meaningful earlier, which is exactly what the time-indexed
        consistency notions require).  Subclasses that already declare
        the name reject the addition (resolve the conflict first).
        """
        spec = (
            attribute
            if isinstance(attribute, Attribute)
            else Attribute(*attribute)
        )
        spec = Attribute(
            spec.name, spec.type, spec.immutable, declared_at=self.now
        )
        cls = self.get_class(class_name)
        if not cls.is_alive:
            raise LifespanError(
                f"cannot evolve dropped class {class_name!r}"
            )
        family = [
            self._classes[sub]
            for sub in self._isa.subclasses(class_name)
            if self._classes[sub].is_alive
        ]
        for member in family:
            if spec.name in member.attributes:
                raise SchemaError(
                    f"class {member.name!r} already declares attribute "
                    f"{spec.name!r}"
                )
        self._check_mentioned_classes(spec.type, class_name)
        if self.mvcc.active:
            for member in family:
                self.mvcc.before_class_change(member.name)
                for oid in member.history.instances_at(self.now):
                    self.mvcc.before_object_change(oid)
        for member in family:
            member.declare_attribute(spec)
            for oid in member.history.instances_at(self.now):
                obj = self._objects[oid]
                if isinstance(spec.type, TemporalType):
                    history = obj.retained.pop(spec.name, None)
                    if history is None:
                        history = TemporalValue()
                    history.assign(self.now, NULL)
                    obj.value[spec.name] = history
                else:
                    obj.value[spec.name] = NULL
        self.caches.bump_all()
        if self._journal is not None:
            from repro.types.parser import format_type

            self._journal.append({
                "kind": "add_attribute",
                "class": class_name,
                "attribute": [
                    spec.name, format_type(spec.type), spec.immutable
                ],
            })

    def remove_attribute(self, class_name: str, name: str) -> None:
        """Remove an attribute from a class (and its subclasses) at
        ``now``.

        Only attributes declared at this level may be removed (an
        inherited attribute must be removed from the declaring
        superclass).  Object slots follow the Section 5.2 migration
        semantics: static values vanish without trace, temporal
        histories are closed and retained.
        """
        cls = self.get_class(class_name)
        if name not in cls.attributes:
            raise SchemaError(
                f"class {class_name!r} has no attribute {name!r}"
            )
        for ancestor in self._isa.superclasses(class_name, strict=True):
            if name in self._classes[ancestor].attributes:
                raise SchemaError(
                    f"attribute {name!r} is inherited from "
                    f"{ancestor!r}; remove it there"
                )
        now = self.now
        family = [
            self._classes[sub]
            for sub in self._isa.subclasses(class_name)
            if name in self._classes[sub].attributes
        ]
        if self.mvcc.active:
            for member in family:
                self.mvcc.before_class_change(member.name)
                for oid in member.history.instances_at(now):
                    self.mvcc.before_object_change(oid)
        for member in family:
            member.retire_attribute(name, now)
            for oid in member.history.instances_at(now):
                obj = self._objects[oid]
                leaving = obj.value.pop(name, None)
                if isinstance(leaving, TemporalValue):
                    leaving.close(now - 1)
                    if not leaving.is_empty():
                        obj.retained[name] = leaving
        self.caches.bump_all()
        self._journal_op({
            "kind": "remove_attribute",
            "class": class_name,
            "attribute": name,
        })

    def drop_class(self, name: str) -> None:
        """Drop a class: lifespan ends at ``now - 1``.

        Requires no live subclasses and an empty current extent (the
        model gives no semantics to orphaned members).
        """
        cls = self.get_class(name)
        live_subclasses = [
            sub
            for sub in self._isa.subclasses(name, strict=True)
            if self._classes[sub].is_alive
        ]
        if live_subclasses:
            raise SchemaError(
                f"cannot drop {name!r}: live subclasses "
                f"{sorted(live_subclasses)}"
            )
        if cls.history.members_at(self.now):
            raise SchemaError(
                f"cannot drop {name!r}: its extent at {self.now} is not "
                "empty"
            )
        if self.mvcc.active:
            self.mvcc.before_class_change(name)
        cls.close_lifespan(self.now)
        self.caches.bump_all()
        self._journal_op({"kind": "drop_class", "class": name})

    def get_class(self, name: str) -> ClassSignature:
        """The class identified by *name* (SchemaView protocol)."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"class {name!r} is not defined") from None

    def get_metaclass(self, name: str) -> Metaclass:
        try:
            return self._metaclasses[name]
        except KeyError:
            raise UnknownClassError(
                f"metaclass {name!r} is not defined"
            ) from None

    def classes(self) -> Iterator[ClassSignature]:
        return iter(self._classes.values())

    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    # --------------------------------------------------------------- objects

    def create_object(
        self,
        class_name: str,
        attributes: Mapping[str, Any] | None = None,
    ) -> OID:
        """Create an object as an instance of *class_name* at ``now``.

        Temporal attributes accept a plain value (the history starts at
        ``now``); static attributes take their value directly; omitted
        attributes start as null.  Values are type-checked against
        ``[[T]]_now`` and referenced objects must exist now.
        """
        cls = self.get_class(class_name)
        if not cls.is_alive:
            raise LifespanError(
                f"cannot instantiate dropped class {class_name!r}"
            )
        provided = dict(attributes or {})
        value: dict[str, Any] = {}
        for attr_name, attribute in cls.attributes.items():
            raw = provided.pop(attr_name, NULL)
            value[attr_name] = self._admit_value(
                attribute, raw, fresh=True
            )
        if provided:
            raise SchemaError(
                f"class {class_name!r} has no attribute(s) "
                f"{sorted(provided)}"
            )
        oid = self._oids.fresh(self._isa.hierarchy_of(class_name))
        obj = TemporalObject(oid, self.now, class_name, value)
        self._check_references(obj)
        if self.mvcc.active:
            # Open views must not see the newcomer in the extents; the
            # object itself is filtered by its oid serial watermark.
            self.mvcc.before_extent_change(class_name)
        self._objects[oid] = obj
        self._enter_extents(oid, class_name)
        self._emit(
            Event(
                EventKind.CREATE, self.now, oid, class_name,
                payload=dict(attributes or {}),
            )
        )
        return oid

    def _admit_value(
        self, attribute: Attribute, raw: Any, fresh: bool
    ) -> Any:
        """Validate and shape one attribute value for storage."""
        if isinstance(attribute.type, TemporalType):
            if isinstance(raw, TemporalValue):
                raise TypeCheckError(
                    f"attribute {attribute.name!r}: pass the current "
                    "value; histories are built by updates over time"
                )
            inner = attribute.type.argument
            if not is_null(raw) and not in_extension(
                raw, inner, self.now, self, now=self.now
            ):
                raise TypeCheckError(
                    f"attribute {attribute.name!r}: {raw!r} is not a "
                    f"legal value of {inner!r} at time {self.now}"
                )
            history = TemporalValue()
            history.assign(self.now, raw)
            return history
        if isinstance(raw, TemporalValue):
            raise TypeCheckError(
                f"attribute {attribute.name!r} is static; a temporal "
                "value cannot substitute it (coercion goes the other "
                "way; Section 6.1)"
            )
        if not is_null(raw) and not in_extension(
            raw, attribute.type, self.now, self, now=self.now
        ):
            raise TypeCheckError(
                f"attribute {attribute.name!r}: {raw!r} is not a legal "
                f"value of {attribute.type!r} at time {self.now}"
            )
        return raw

    def _enter_extents(self, oid: OID, class_name: str) -> None:
        for ancestor in self._isa.superclasses(class_name):
            self._classes[ancestor].history.add_member(oid, self.now)
        self._classes[class_name].history.add_instance(oid, self.now)

    def _check_references(self, obj: TemporalObject) -> None:
        for attr_name, attr_value in obj.value.items():
            current = (
                attr_value.get(self.now)
                if isinstance(attr_value, TemporalValue)
                else attr_value
            )
            for ref in oids_in_value(current):
                target = self._objects.get(ref)
                if target is None or not target.alive_at(self.now, self.now):
                    raise ReferentialIntegrityError(
                        f"attribute {attr_name!r} refers to {ref!r}, "
                        f"which does not exist at time {self.now}"
                    )

    def get_object(self, oid: OID) -> TemporalObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(
                f"no object with oid {oid!r}"
            ) from None

    def objects(self) -> Iterator[TemporalObject]:
        return iter(self._objects.values())

    def live_objects(self) -> Iterator[TemporalObject]:
        now = self.now
        return (o for o in self._objects.values() if o.alive_at(now, now))

    def __contains__(self, oid: object) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def update_attribute(self, oid: OID, name: str, value: Any) -> None:
        """Set attribute *name* of *oid* to *value* at the current time."""
        obj = self._require_alive(oid)
        if self.mvcc.active:
            self.mvcc.before_object_change(oid)
        cls = self.get_class(obj.current_class(self.now))
        attribute = cls.attribute(name)
        if isinstance(attribute.type, TemporalType):
            history = obj.value.get(name)
            if not isinstance(history, TemporalValue):
                raise TypeCheckError(
                    f"attribute {name!r} of {oid!r} is missing its "
                    "temporal value"
                )
            if attribute.immutable and not _immutable_allows(
                history, value
            ):
                raise SchemaError(
                    f"attribute {name!r} is immutable; its value is a "
                    "constant function over the object lifetime"
                )
            inner = attribute.type.argument
            if not is_null(value) and not in_extension(
                value, inner, self.now, self, now=self.now
            ):
                raise TypeCheckError(
                    f"{value!r} is not a legal value of {inner!r} at "
                    f"time {self.now}"
                )
            self._check_value_references(name, value)
            old = history.get(self.now)
            history.assign(self.now, value)
            self._emit(
                Event(
                    EventKind.UPDATE, self.now, oid, cls.name,
                    attribute=name, old_value=old, new_value=value,
                )
            )
        else:
            if not is_null(value) and not in_extension(
                value, attribute.type, self.now, self, now=self.now
            ):
                raise TypeCheckError(
                    f"{value!r} is not a legal value of "
                    f"{attribute.type!r} at time {self.now}"
                )
            self._check_value_references(name, value)
            old = obj.value.get(name)
            obj.value[name] = value
            self._emit(
                Event(
                    EventKind.UPDATE, self.now, oid, cls.name,
                    attribute=name, old_value=old, new_value=value,
                )
            )

    def _check_value_references(self, attr_name: str, value: Any) -> None:
        for ref in oids_in_value(value):
            target = self._objects.get(ref)
            if target is None or not target.alive_at(self.now, self.now):
                raise ReferentialIntegrityError(
                    f"attribute {attr_name!r} refers to {ref!r}, which "
                    f"does not exist at time {self.now}"
                )

    def correct_attribute(
        self,
        oid: OID,
        name: str,
        start: int,
        end: int,
        value: Any,
    ) -> None:
        """Retroactively correct a temporal attribute over ``[start,
        end]`` -- the valid-time operation par excellence.

        Valid time records when facts were *true in reality* (Section
        1.1), so discovering that the recorded history was wrong calls
        for rewriting the affected stretch: the value becomes *value*
        throughout ``[start, end]``, splitting or truncating whatever
        pairs the stretch overlaps.  Constraints:

        * the attribute must be temporal and currently declared (its
          whole history is the correction target);
        * the interval must lie within the object's lifespan and not
          extend into the future (``end <= now``);
        * the value must be legal at every instant of the interval
          (checked via the same machinery as Definition 3.5);
        * corrections cannot introduce dangling references (the
          referenced objects must exist throughout the interval).

        A correction strictly in the past splits the surrounding
        history around the window (the pre-correction current value
        keeps tracking ``now``).  A correction whose window reaches
        ``now`` makes the corrected value *current*: the function
        continues with it until the next update -- there is no
        information from which the old value could "resume" in the
        future.  Pair with
        :class:`repro.bitemporal.BitemporalDatabase` to keep the
        pre-correction belief queryable.
        """
        obj = self.get_object(oid)
        if self.mvcc.active:
            self.mvcc.before_object_change(oid)
        now = self.now
        if end < start:
            raise InvalidIntervalError(
                f"correction interval start {start} is after end {end}"
            )
        if end > now:
            raise LifespanError(
                f"corrections cannot reach into the future (end={end} > "
                f"now={now}); use update_attribute for the present"
            )
        span = Interval(start, end)
        life = IntervalSet([obj.lifespan], now=now)
        if not IntervalSet([span]).issubset(life):
            raise LifespanError(
                f"[{start},{end}] is not inside the lifespan of {oid!r}"
            )
        # The attribute must be temporal in the class(es) the object
        # belonged to throughout the interval; use the object's own
        # history slot, which exists exactly when it ever was.
        history = obj.value.get(name)
        target = history if isinstance(history, TemporalValue) else (
            obj.retained.get(name)
        )
        if not isinstance(target, TemporalValue):
            raise SchemaError(
                f"object {oid!r} records no temporal history under "
                f"{name!r}; only temporal attributes can be corrected "
                "(static past values are not recorded at all)"
            )
        current_class = obj.current_class(now) if obj.alive_at(now, now) \
            else None
        declared_type: Type | None = None
        if current_class is not None:
            cls = self.get_class(current_class)
            if name in cls.attributes and isinstance(
                cls.attributes[name].type, TemporalType
            ):
                declared_type = cls.attributes[name].type.argument
                if cls.attributes[name].immutable:
                    raise SchemaError(
                        f"attribute {name!r} is immutable; its history "
                        "cannot be rewritten"
                    )
        if declared_type is not None and not is_null(value):
            for instant in (start, end):
                if not in_extension(
                    value, declared_type, instant, self, now=now
                ):
                    raise TypeCheckError(
                        f"{value!r} is not a legal value of "
                        f"{declared_type!r} at instant {instant}"
                    )
            if declared_type.mentions_object_types():
                for ref in oids_in_value(value):
                    target_obj = self._objects.get(ref)
                    if target_obj is None or not IntervalSet(
                        [span]
                    ).issubset(
                        IntervalSet([target_obj.lifespan], now=now)
                    ):
                        raise ReferentialIntegrityError(
                            f"correction refers to {ref!r}, which does "
                            f"not exist throughout [{start},{end}]"
                        )
        open_overlaps = (
            target.has_open_pair()
            and target.pairs()[-1][0].start <= end
        )
        if end == now and open_overlaps:
            # The window reaches the present: the corrected value
            # becomes (and stays) the current value.
            target.put(
                Interval.from_now(start), value, overwrite=True, now=now
            )
        else:
            target.put(span, value, overwrite=True, now=now)
        self._emit(
            Event(
                EventKind.CORRECT,
                now,
                oid,
                current_class or "",
                attribute=name,
                new_value=value,
                window=(start, end),
            )
        )

    def migrate(
        self,
        oid: OID,
        new_class: str,
        attributes: Mapping[str, Any] | None = None,
    ) -> None:
        """Move *oid* to *new_class* as its most specific class.

        Migration is allowed anywhere within the object's hierarchy
        (specialization *and* generalization; never across hierarchies,
        Invariant 6.2).  Attribute handling per Section 5.2:

        * static attributes not in the new class are deleted, no trace;
        * temporal attributes not in the new class have their history
          closed and retained in the object;
        * attributes new in the target class take their value from
          *attributes* (or null); a retained history under the same
          name is resumed (employee re-promoted to manager);
        * an attribute whose kind changes temporal -> static keeps its
          closed history retained and gets a current static value
          (coerced from the history when not provided); static ->
          temporal starts recording at ``now`` from the current value.
        """
        obj = self._require_alive(oid)
        old_class = obj.current_class(self.now)
        if new_class == old_class:
            raise MigrationError(
                f"{oid!r} is already an instance of {new_class!r}"
            )
        new_cls = self.get_class(new_class)
        if not new_cls.is_alive:
            raise LifespanError(
                f"cannot migrate into dropped class {new_class!r}"
            )
        if not self._isa.same_hierarchy(old_class, new_class):
            raise MigrationError(
                f"cannot migrate {oid!r} from hierarchy "
                f"{self._isa.hierarchy_of(old_class)!r} to "
                f"{self._isa.hierarchy_of(new_class)!r} (Invariant 6.2)"
            )
        provided = dict(attributes or {})
        now = self.now

        # Validate everything before mutating.
        staged: dict[str, Any] = {}
        for attr_name, attribute in new_cls.attributes.items():
            if attr_name in provided:
                staged[attr_name] = self._admit_migration_value(
                    attribute, provided.pop(attr_name)
                )
        if provided:
            raise SchemaError(
                f"class {new_class!r} has no attribute(s) "
                f"{sorted(provided)}"
            )

        old_cls = self.get_class(old_class)
        old_attrs = old_cls.attributes
        new_attrs = new_cls.attributes

        if self.mvcc.active:
            self.mvcc.before_object_change(oid)
            self.mvcc.before_extent_change(old_class)
            self.mvcc.before_extent_change(new_class)

        # 1. Attributes leaving the object.
        for attr_name in list(obj.value):
            if attr_name in new_attrs:
                continue
            leaving = obj.value.pop(attr_name)
            if isinstance(leaving, TemporalValue):
                leaving.close(now - 1)
                if not leaving.is_empty():
                    obj.retained[attr_name] = leaving
            # static: dropped without trace (Section 5.2)

        # 2. Attributes of the new class.
        for attr_name, attribute in new_attrs.items():
            current = obj.value.get(attr_name)
            wants_temporal = isinstance(attribute.type, TemporalType)
            if wants_temporal:
                if isinstance(current, TemporalValue):
                    history = current
                else:
                    history = obj.retained.pop(attr_name, None) or (
                        TemporalValue()
                    )
                    seed = staged.pop(
                        attr_name,
                        current if current is not None else NULL,
                    )
                    history.assign(now, seed)
                    obj.value[attr_name] = history
                    continue
                if attr_name in staged:
                    history.assign(now, staged.pop(attr_name))
            else:
                if isinstance(current, TemporalValue):
                    # temporal -> static: retain the history, coerce.
                    coerced = current.get(now, NULL)
                    current.close(now - 1)
                    if not current.is_empty():
                        obj.retained[attr_name] = current
                    obj.value[attr_name] = staged.pop(attr_name, coerced)
                elif attr_name in staged:
                    obj.value[attr_name] = staged.pop(attr_name)
                elif current is None:
                    obj.value[attr_name] = NULL

        # 3. Class history and extents.
        obj.class_history.assign(now, new_class)
        old_supers = self._isa.superclasses(old_class)
        new_supers = self._isa.superclasses(new_class)
        for leaving_class in old_supers - new_supers:
            self._classes[leaving_class].history.remove_member(oid, now)
        for entering_class in new_supers - old_supers:
            self._classes[entering_class].history.add_member(oid, now)
        old_cls.history.remove_instance(oid, now)
        new_cls.history.add_instance(oid, now)

        self._check_references(obj)
        self._emit(
            Event(
                EventKind.MIGRATE, now, oid, new_class,
                from_class=old_class,
                payload=dict(attributes or {}),
            )
        )

    def _admit_migration_value(self, attribute: Attribute, raw: Any) -> Any:
        if isinstance(raw, TemporalValue):
            raise TypeCheckError(
                f"attribute {attribute.name!r}: pass the current value; "
                "histories are built by updates over time"
            )
        target = attribute.type
        inner = (
            target.argument if isinstance(target, TemporalType) else target
        )
        if not is_null(raw) and not in_extension(
            raw, inner, self.now, self, now=self.now
        ):
            raise TypeCheckError(
                f"attribute {attribute.name!r}: {raw!r} is not a legal "
                f"value of {inner!r} at time {self.now}"
            )
        return raw

    def delete_object(self, oid: OID, force: bool = False) -> None:
        """Delete *oid*: its last instant of existence is ``now - 1``.

        Refuses when other live objects currently refer to it, unless
        *force* is set (leaving the checker to flag the dangle is the
        caller's responsibility then).
        """
        obj = self._require_alive(oid)
        now = self.now
        if not force:
            for other in self.live_objects():
                if other.oid == oid:
                    continue
                from repro.objects.references import referenced_oids

                if oid in referenced_oids(other, now, now):
                    raise ReferentialIntegrityError(
                        f"cannot delete {oid!r}: {other.oid!r} refers "
                        f"to it at time {now} (pass force=True to "
                        "override)"
                    )
        current_class = obj.current_class(now)
        if self.mvcc.active:
            self.mvcc.before_object_change(oid)
            self.mvcc.before_extent_change(current_class)
        obj.end_lifespan(now)
        for name, value in obj.value.items():
            if isinstance(value, TemporalValue):
                value.close(now - 1)
        obj.class_history.close(now - 1)
        for ancestor in self._isa.superclasses(current_class):
            self._classes[ancestor].history.remove_member(oid, now)
        self.get_class(current_class).history.remove_instance(oid, now)
        self._emit(
            Event(
                EventKind.DELETE, now, oid, current_class, payload=force
            )
        )

    def _require_alive(self, oid: OID) -> TemporalObject:
        obj = self.get_object(oid)
        if not obj.alive_at(self.now, self.now):
            raise LifespanError(
                f"object {oid!r} does not exist at time {self.now}"
            )
        return obj

    # ------------------------------------------------- substitutability

    def view_as(self, oid: OID, class_name: str) -> RecordValue:
        """The object's state seen as an instance of *class_name*,
        with snapshot coercion for temporally-refined attributes
        (Section 6.1)."""
        obj = self._require_alive(oid)
        current = obj.current_class(self.now)
        if not self._isa.isa_le(current, class_name):
            raise MigrationError(
                f"{oid!r} is an instance of {current!r}, which is not a "
                f"subclass of {class_name!r}; substitutability does not "
                "apply"
            )
        return as_member_of(obj, self.get_class(class_name), self.now)

    # ---------------------------------------------------- methods (behaviour)

    def call_method(
        self, oid: OID, method_name: str, *args: Any, at: int | None = None
    ) -> Any:
        """Invoke a method body against the object's snapshot at *at*
        (default: now) -- the time-dependent behaviour extension."""
        from repro.objects.state import snapshot as take_snapshot

        obj = self._require_alive(oid)
        cls = self.get_class(obj.current_class(self.now))
        try:
            method = cls.methods[method_name]
        except KeyError:
            raise SchemaError(
                f"class {cls.name!r} has no method {method_name!r}"
            ) from None
        if method.body is None:
            raise SchemaError(
                f"method {method_name!r} of {cls.name!r} has no body"
            )
        if len(args) != method.arity:
            raise TypeCheckError(
                f"method {method_name!r} expects {method.arity} "
                f"argument(s), got {len(args)}"
            )
        for index, (arg, expected) in enumerate(zip(args, method.inputs)):
            if not is_null(arg) and not in_extension(
                arg, expected, self.now, self, now=self.now
            ):
                raise TypeCheckError(
                    f"method {method_name!r}: argument {index} "
                    f"({arg!r}) is not a legal value of {expected!r}"
                )
        instant = self.now if at is None else at
        receiver = take_snapshot(obj, instant, self.now)
        result = method.body(self, oid, receiver, *args)
        if not is_null(result) and not in_extension(
            result, method.output, self.now, self, now=self.now
        ):
            raise TypeCheckError(
                f"method {method_name!r} returned {result!r}, not a "
                f"legal value of {method.output!r}"
            )
        return result

    def call_c_method(
        self, class_name: str, method_name: str, *args: Any
    ) -> Any:
        """Invoke a c-method: an operation on the class itself.

        C-attributes and c-operations associate state and behaviour
        with an entire class rather than its instances (paper, Section
        2: "c-operations can be used to manipulate such values", e.g.
        recompute the average age of employees).  The body receives
        ``(db, class_signature)`` plus the arguments; it typically
        reads the extent and updates c-attributes via
        ``cls.history.set_c_attr(name, value, db.now)``.
        """
        cls = self.get_class(class_name)
        metaclass = self.get_metaclass(cls.metaclass_name)
        try:
            method = metaclass.c_methods[method_name]
        except KeyError:
            raise SchemaError(
                f"class {class_name!r} has no c-method {method_name!r}"
            ) from None
        if method.body is None:
            raise SchemaError(
                f"c-method {method_name!r} of {class_name!r} has no body"
            )
        if len(args) != method.arity:
            raise TypeCheckError(
                f"c-method {method_name!r} expects {method.arity} "
                f"argument(s), got {len(args)}"
            )
        for index, (arg, expected) in enumerate(zip(args, method.inputs)):
            if not is_null(arg) and not in_extension(
                arg, expected, self.now, self, now=self.now
            ):
                raise TypeCheckError(
                    f"c-method {method_name!r}: argument {index} "
                    f"({arg!r}) is not a legal value of {expected!r}"
                )
        result = method.body(self, cls, *args)
        if not is_null(result) and not in_extension(
            result, method.output, self.now, self, now=self.now
        ):
            raise TypeCheckError(
                f"c-method {method_name!r} returned {result!r}, not a "
                f"legal value of {method.output!r}"
            )
        return result

    # ------------------------------------------------ TypeContext protocol

    def pi(self, class_name: str, t: int) -> frozenset[OID]:
        """``pi(c, t)``: the extent of the class at instant t (cached)."""
        cls = self.get_class(class_name)
        cached = self.caches.get_pi(class_name, t)
        if cached is not None:
            return cached
        result = cls.history.members_at(t)
        self.caches.put_pi(class_name, t, result)
        return result

    def anchor_extent(self, class_name: str, t: int) -> frozenset[OID]:
        """The extent anchoring AT/NOW query evaluation.

        Identical in value to :meth:`pi`; served from the pi cache when
        warm, and on a miss -- for populations large enough to amortize
        it -- from the per-class :class:`IntervalStabbingIndex`
        (O(log n + k) per stab), which is stale-marked on mutation.
        Instants beyond ``now`` fall back to the set-valued history
        (the index resolves moving membership intervals at build time).
        """
        cached = self.caches.get_pi(class_name, t)
        if cached is not None:
            return cached
        cls = self.get_class(class_name)
        use_index = (
            perf.is_enabled
            # During a bulk batch the index is unmaintained and its
            # generation key is frozen -- a stale index would *hit*.
            and not self.caches.suspended
            and 0 <= t <= self.now
            and len(cls.history.ever_members()) >= INDEX_MIN_POPULATION
        )
        # Only the cache-miss compute is traced: warm reads stay
        # guard-free, so tracing costs the steady state nothing.
        if obs.is_enabled:
            with obs.span(
                "db.extent",
                cls=class_name,
                t=t,
                path="index" if use_index else "history",
            ):
                result = self._compute_anchor_extent(cls, class_name, t, use_index)
        else:
            result = self._compute_anchor_extent(cls, class_name, t, use_index)
        self.caches.put_pi(class_name, t, result)
        return result

    def _compute_anchor_extent(
        self, cls, class_name: str, t: int, use_index: bool
    ) -> frozenset[OID]:
        if use_index:
            index = self.caches.stabbing_index(self, class_name)
            return frozenset(index.stab(t))
        return cls.history.members_at(t)

    def extent(self, class_name: str, t: int) -> frozenset[OID]:
        if class_name not in self._classes:
            return frozenset()
        return self.pi(class_name, t)

    def membership_times(self, class_name: str, oid: OID) -> IntervalSet:
        if class_name not in self._classes:
            return IntervalSet.empty()
        cached = self.caches.get_membership(class_name, oid, self.now)
        if cached is not None:
            return cached
        result = self._classes[class_name].history.member_times(
            oid, self.now
        )
        self.caches.put_membership(class_name, oid, self.now, result)
        return result

    def snapshot_at(self, oid: OID, t: int | None = None) -> RecordValue:
        """``snapshot(i, t)`` (Section 5.3) with result caching.

        Defaults to the current instant.  The cached record is immutable
        and invalidated by any event naming *oid* (update, correction,
        migration, deletion), by schema evolution, and by clock
        advancement.
        """
        from repro.objects.state import snapshot as take_snapshot

        instant = self.now if t is None else t
        obj = self.get_object(oid)
        cached = self.caches.get_snapshot(oid, instant, self.now)
        if cached is not None:
            return cached
        if obs.is_enabled:
            with obs.span("db.snapshot", oid=oid.serial, t=instant):
                result = take_snapshot(obj, instant, self.now)
        else:
            result = take_snapshot(obj, instant, self.now)
        self.caches.put_snapshot(oid, instant, self.now, result)
        return result

    def ever_member(self, class_name: str, oid: OID) -> bool:
        if class_name not in self._classes:
            return False
        return oid in self._classes[class_name].history.ever_members()

    def member_throughout(
        self, class_name: str, oid: OID, times: IntervalSet
    ) -> bool:
        return times.issubset(self.membership_times(class_name, oid))

    def classes_of(self, oid: OID) -> tuple[str, ...]:
        obj = self._objects.get(oid)
        if obj is None:
            return ()
        current = obj.most_specific_class(self.now)
        if current is not None:
            return tuple(self._isa.superclasses(current))
        # Deleted object: every class it ever belonged to.
        names: set[str] = set()
        for _interval, class_name in obj.class_history.pairs():
            names.update(self._isa.superclasses(class_name))
        return tuple(names)

    def known_class(self, class_name: str) -> bool:
        return class_name in self._classes

    @property
    def current_time(self) -> int | None:
        return self.now

    @property
    def isa(self) -> IsaHierarchy:
        return self._isa

    def __repr__(self) -> str:
        return (
            f"TemporalDatabase(now={self.now}, "
            f"classes={len(self._classes)}, objects={len(self._objects)})"
        )


def _as_attributes(
    specs: Iterable[Attribute | tuple[str, Any]],
) -> dict[str, Attribute]:
    result: dict[str, Attribute] = {}
    for spec in specs:
        attribute = (
            spec if isinstance(spec, Attribute) else Attribute(*spec)
        )
        if attribute.name in result:
            raise SchemaError(
                f"attribute {attribute.name!r} declared twice"
            )
        result[attribute.name] = attribute
    return result


def _immutable_allows(history: TemporalValue, value: Any) -> bool:
    """An immutable attribute's value is a constant function: only the
    very same value may be (re-)assigned once set to non-null."""
    if history.is_empty():
        return True
    existing = [v for v in history.values() if not is_null(v)]
    if not existing:
        return True
    return all(v == value for v in existing)
