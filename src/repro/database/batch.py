"""The bulk-ingestion fast path: ``db.batch()`` / ``db.bulk_load()``.

Per-operation ingest pays three per-event costs: one journal frame +
fsync (``sync="always"``), one round of cache/attribute-index
maintenance, and one observer notification.  A :class:`BulkBatch`
amortizes all three across the whole run:

* **group commit** -- journal records are framed into an in-memory
  buffer (:meth:`~repro.database.wal.Journal.begin_batch`) and hit the
  disk as *one* append + *one* fsync barrier at batch close.  The run
  is bracketed by ``begin``/``commit`` markers, so a crash anywhere
  before (or during) the flush recovers to the pre-batch state: the
  torn run is exactly a trailing open transaction and recovery drops
  it wholesale -- never a prefix (Def. 5.6 referential integrity holds
  on whatever recovery rebuilds);
* **deferred maintenance** -- :meth:`DatabaseCaches.suspend` bypasses
  the hot-path caches and the planner's attribute indexes for the
  duration (mid-batch reads recompute from first principles, so they
  are always coherent), and at close a single coalesced delta -- or a
  lazy rebuild, past the :data:`~repro.database.attr_indexes
  .REBUILD_FRACTION` heuristic -- reconciles: one generation bump per
  touched class/oid, one posting rederive per (index, oid), however
  many events named them;
* **coalesced emission** -- observers are not called per operation;
  a single :attr:`EventKind.BATCH` event carrying the ordered event
  tuple is delivered at close (``event.events`` unpacks it), so
  triggers and constraints see every operation exactly once, in order.

Interaction with transactions: a batch may run *inside* a
:class:`~repro.database.transactions.Transaction` (the batch then
writes no markers of its own and defers its durability barrier to the
transaction commit; a rollback truncates the whole batch with the rest
of the suffix), but a transaction must not begin inside a batch --
:class:`~repro.errors.BatchError`.  Nested batches are rejected the
same way.

An exception escaping the batch body does *not* roll back the applied
prefix (wrap the batch in a Transaction for atomicity): the operations
that completed are flushed and stay durable, keeping the in-memory
state and the journal in agreement; only the coalesced observer
notification is skipped.

Ablation: ``REPRO_NO_BATCH=1`` (env, read at import) or
:func:`set_enabled` / :func:`disabled` turn ``db.batch()`` into a
passthrough -- every operation journals, maintains and notifies
individually, which is the baseline `benchmarks/bench_ingest.py`
measures against.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro import perf
from repro.database.events import Event, EventKind
from repro.errors import BatchError
from repro.obs import spans as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

#: Module-level ablation switch (mirrors ``query.planner.is_enabled``).
is_enabled: bool = os.environ.get("REPRO_NO_BATCH", "").lower() not in (
    "1",
    "true",
    "yes",
)

_OPS = perf.metric("batch.ops")
_FSYNCS = perf.metric("batch.fsyncs")
_COALESCED = perf.metric("batch.coalesced_events")
_COMMITS = perf.metric("batch.commits")
_REBUILDS = perf.metric("batch.rebuilds")


def set_enabled(enabled: bool) -> bool:
    """Toggle the batch fast path; returns the previous value."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(enabled)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Scoped ablation: ``with batch.disabled(): ...``"""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class BulkBatch:
    """One active bulk batch; returned by ``db.batch()``.

    Not reentrant and not reusable: one ``with`` block per instance.
    With the fast path ablated the context manager is a passthrough
    and every operation takes the per-op path.
    """

    __slots__ = ("_db", "_active", "_rolled_back", "events")

    def __init__(self, db: "TemporalDatabase") -> None:
        self._db = db
        self._active = False
        self._rolled_back = False
        #: The per-operation events deferred during the batch, in order.
        self.events: list[Event] = []

    # -- recording (called from the database's emission point) -----------

    def record(self, event: Event) -> None:
        self.events.append(event)
        _OPS.add()

    def mark_rolled_back(self) -> None:
        """A transaction rollback erased the batched state from under
        us (called by ``Transaction.rollback``): the deferred events
        describe operations that no longer happened, so close by
        dropping everything instead of reconciling."""
        self._rolled_back = True

    # -- context management ----------------------------------------------

    def __enter__(self) -> "BulkBatch":
        if not is_enabled:
            return self  # passthrough: per-op path stays in effect
        if self._db._batch is not None:
            raise BatchError("a batch is already open on this database")
        journal = self._db._journal
        if journal is not None:
            journal.begin_batch()
        self._db._batch = self
        self._db.caches.suspend()
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        self._active = False
        self._db._batch = None
        journal = self._db._journal
        if self._rolled_back:
            # journal.abort() already discarded the buffered records
            # and truncated the suffix; the in-memory state was
            # restored from the backup, so the deferred events are
            # void -- resume by dropping everything.
            self._db.caches.resume(self._db, None)
            return False
        # Reconcile caches first (observers -- and any error handling
        # above us -- must never read through stale entries), then
        # flush the journal, then notify: the per-operation order.
        with obs.span("batch.flush", ops=len(self.events)):
            if self._db.caches.resume(self._db, self.events):
                _REBUILDS.add()
            if journal is not None and journal.in_batch:
                flushed = journal.commit_batch()
                if (
                    flushed
                    and not journal.in_transaction
                    and journal.sync != "never"
                ):
                    _FSYNCS.add()
            _COMMITS.add()
            if exc_type is None and self.events:
                _COALESCED.add(len(self.events))
                self._db._notify(
                    Event(
                        kind=EventKind.BATCH,
                        at=self._db.now,
                        oid=None,  # type: ignore[arg-type] -- many objects
                        class_name="",
                        payload=tuple(self.events),
                    )
                )
        return False
