"""Byte-budgeted LRU cache for cold segment pages.

Cold history lives in immutable segment files (:mod:`repro.database.
segments`); queries that reach past the hot in-memory tail fault the
covering page in through this cache.  The cache is budgeted in *bytes
of encoded page payload* -- the quantity the disk actually charged us
for -- not in page counts, so one budget number (the
``REPRO_PAGE_CACHE_BYTES`` environment variable, default 64 MiB)
bounds resident cold history regardless of how histories were chunked
into pages.

Eviction is strict LRU with one deliberate exception: the page being
returned right now is never evicted, even when it alone exceeds the
budget.  A budget smaller than every page therefore degrades to
"exactly one page resident" -- the configuration the oracle property
test uses to force maximal faulting -- rather than thrashing to zero.

Instrumentation: the ``pagecache.pages`` cache counter (hits, misses,
evictions-as-invalidations), the ``pagecache.resident_bytes`` gauge,
and the ``segment.loaded_bytes`` / ``segment.evicted_bytes`` tallies.
Evictions run under a ``segment.evict`` obs span; page loads are
spanned by the caller (:class:`~repro.database.segments.SegmentReader`)
because only it knows the segment file and page identity.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable

from repro import perf
from repro.obs import spans as obs

#: Default page-cache budget when ``REPRO_PAGE_CACHE_BYTES`` is unset.
DEFAULT_BUDGET = 64 * 1024 * 1024

_PAGES = perf.counter("pagecache.pages")
_RESIDENT = perf.metric("pagecache.resident_bytes")
_LOADED = perf.metric("segment.loaded_bytes")
_EVICTED = perf.metric("segment.evicted_bytes")


def _env_budget() -> int:
    raw = os.environ.get("REPRO_PAGE_CACHE_BYTES", "").strip()
    if not raw:
        return DEFAULT_BUDGET
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_BUDGET


class PageCache:
    """LRU over decoded pages, budgeted by encoded payload bytes."""

    def __init__(self, budget: int | None = None) -> None:
        self.budget = budget if budget is not None else _env_budget()
        # key -> (nbytes, payload); insertion order == recency order.
        self._entries: OrderedDict[Any, tuple[int, Any]] = OrderedDict()
        self.resident_bytes = 0

    def get(
        self, key: Any, loader: Callable[[], tuple[int, Any]]
    ) -> Any:
        """The cached payload for *key*, faulting it in via *loader*.

        *loader* returns ``(nbytes, payload)`` where *nbytes* is the
        encoded on-disk size charged against the budget.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            _PAGES.hit()
            return entry[1]
        _PAGES.miss()
        nbytes, payload = loader()
        self._entries[key] = (nbytes, payload)
        self.resident_bytes += nbytes
        _LOADED.add(nbytes)
        self._shrink()
        _RESIDENT.count = self.resident_bytes
        return payload

    def _shrink(self) -> None:
        """Evict least-recently-used pages until within budget.

        The newest entry (the one being returned) always survives, so
        a sub-page budget pins exactly one page.
        """
        if self.resident_bytes <= self.budget or len(self._entries) <= 1:
            return
        if obs.is_enabled:
            with obs.span("segment.evict") as sp:
                evicted = self._evict_over_budget()
                sp.annotate(pages=evicted)
        else:
            self._evict_over_budget()

    def _evict_over_budget(self) -> int:
        evicted = 0
        while (
            self.resident_bytes > self.budget and len(self._entries) > 1
        ):
            _key, (nbytes, _payload) = self._entries.popitem(last=False)
            self.resident_bytes -= nbytes
            _EVICTED.add(nbytes)
            _PAGES.invalidate()
            evicted += 1
        return evicted

    def set_budget(self, budget: int) -> None:
        """Change the budget and evict down to it immediately."""
        self.budget = max(1, int(budget))
        self._shrink()
        _RESIDENT.count = self.resident_bytes

    def clear(self) -> None:
        """Drop every cached page (tests and ``perf.reset_stats``)."""
        self._entries.clear()
        self.resident_bytes = 0
        _RESIDENT.count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``repro stats`` / Prometheus."""
        snap = _PAGES.snapshot()
        return {
            "budget_bytes": self.budget,
            "resident_bytes": self.resident_bytes,
            "pages": len(self._entries),
            "hits": snap["hits"],
            "misses": snap["misses"],
            "evictions": snap["invalidations"],
            "hit_rate": snap["hit_rate"],
        }


#: The process-wide page cache.  Segment readers share it so the byte
#: budget bounds *total* resident cold history, not per-file residency.
PAGE_CACHE = PageCache()


def set_budget(budget: int) -> None:
    """Set the global page-cache budget (bytes)."""
    PAGE_CACHE.set_budget(budget)


def clear() -> None:
    """Drop all cached pages from the global cache."""
    PAGE_CACHE.clear()


def stats() -> dict:
    """Stats snapshot of the global cache."""
    return PAGE_CACHE.stats()
