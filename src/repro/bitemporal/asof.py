"""``AS OF``: transaction-time reads off the WAL's total order.

Valid time says when a fact *held*; transaction time says when the
database *recorded* it.  The engine already totally orders the second
dimension: every committed mutation is journaled as one WAL frame
stamped with its commit LSN (:mod:`repro.database.wal`), so "the state
believed as of transaction time ``n``" is exactly "the state the
committed journal prefix ``lsn <= n`` rebuilds".  This module promotes
that observation into the query surface: :func:`as_of` returns the
database as it was believed at a past LSN, and every valid-time
construct (``evaluate``, snapshots, extent sweeps, all five quantified
scopes) runs against it unchanged -- the two dimensions compose instead
of interacting.

Correctness by construction: :func:`as_of` reconstructs through the
same :func:`repro.database.recovery.recover` call (same ``stop_lsn``
halting rule, same checkpoint selection) that
:func:`repro.replication.pitr.restore_to` wraps, so an ``AS OF n`` read
on the primary equals a point-in-time restore to ``n`` -- the property
harness in ``tests/test_query_oracle.py`` holds the two value-equal
(Def. 5.10) across seeded histories.

Cost model.  At the head (``lsn == journal.last_lsn``) the believed
state *is* the live state, so :func:`as_of` returns the live database
and the read keeps the full planner/index/cache stack -- that is the
E19 gate (``AS OF``-at-head <= 1.1x plain reads,
``benchmarks/bench_bitemporal.py``).  A historical LSN replays the
journal from the newest usable checkpoint; the reconstruction is
wrapped in a ``bitemporal.reconstruct`` span and the result -- an
immutable, journal-less :class:`~repro.database.database.TemporalDatabase`
-- is memoized in a small LRU keyed by ``(journal, lsn)`` -- the
journal *object*, not its path, so two databases that happen to share
a directory name (distinct simulated disks in tests) never alias
(transaction time is append-only, so a committed prefix never changes
and the memo never needs invalidation; aborts only discard frames that
were never committed).  ``REPRO_ASOF_CACHE`` sets the capacity
(default 8, ``0`` disables memoization).

Refusals (:class:`~repro.errors.BitemporalError`): a database without a
journal has no transaction-time order; a future LSN names a commit that
has not happened; and mid-transaction / mid-batch reads are refused
because the frames on disk are not yet committed -- their transaction
time is not assigned until the commit marker lands (the same rule MVCC
applies to view acquisition).

History bound: :meth:`~repro.database.wal.Journal.checkpoint` truncates
the journal, so transaction times older than the oldest retained
checkpoint become unreachable -- :func:`as_of` then raises with the
recovery report's explanation, exactly as ``restore_to`` does.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro import perf
from repro.errors import BitemporalError
from repro.obs import spans as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

_READS = perf.metric("bitemporal.asof_reads")
_HEAD_HITS = perf.metric("bitemporal.head_hits")
_CACHE_HITS = perf.metric("bitemporal.cache_hits")
_RECONSTRUCTIONS = perf.metric("bitemporal.reconstructions")


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_ASOF_CACHE", "").strip()
    try:
        return max(0, int(raw)) if raw else 8
    except ValueError:
        return 8


#: Reconstructed historical states kept per process (LRU).  Settable at
#: import through ``REPRO_ASOF_CACHE``; ``0`` disables memoization.
cache_capacity: int = _env_capacity()

_CACHE: "OrderedDict[tuple[object, int], TemporalDatabase]" = OrderedDict()


def clear_cache() -> None:
    """Drop every memoized reconstruction (tests, memory pressure)."""
    _CACHE.clear()


def transaction_now(db) -> int:
    """The current transaction time of *db*: its last committed LSN."""
    journal = getattr(db, "journal", None)
    if journal is None:
        raise BitemporalError(
            "database has no journal: transaction time is the WAL "
            "order, so an unjournaled database has none"
        )
    return journal.last_lsn


def _check(db, journal, lsn: int) -> None:
    if isinstance(lsn, bool) or not isinstance(lsn, int):
        raise BitemporalError(
            f"AS OF needs an integer transaction time (LSN), "
            f"got {lsn!r}"
        )
    if journal.in_transaction or getattr(db, "_txn_active", False):
        raise BitemporalError(
            "cannot read AS OF inside an open transaction: its frames "
            "have no committed transaction time yet"
        )
    if journal.in_batch or getattr(db, "in_batch", False):
        raise BitemporalError(
            "cannot read AS OF inside an open batch: buffered frames "
            "have no committed transaction time yet"
        )
    if lsn < 1:
        raise BitemporalError(
            f"transaction time starts at LSN 1, got {lsn}"
        )
    if lsn > journal.last_lsn:
        raise BitemporalError(
            f"AS OF {lsn} is in the future: the last committed "
            f"transaction time is {journal.last_lsn}"
        )


def as_of(db, lsn: int) -> "TemporalDatabase":
    """The database as believed at transaction time *lsn*.

    Returns the live database when *lsn* is the current head (the
    believed state and the actual state coincide there), otherwise a
    detached read-only reconstruction -- value-equal (Def. 5.10) to
    ``restore_to(directory, lsn=lsn)`` by construction.
    """
    journal = getattr(db, "journal", None)
    if journal is None:
        raise BitemporalError(
            "AS OF needs a journal-backed database: transaction time "
            "is the WAL order"
        )
    _check(db, journal, lsn)
    _READS.add()
    if lsn == journal.last_lsn:
        _HEAD_HITS.add()
        return db

    # Keyed by the journal object (identity), not its path: a path can
    # be reused by a different database (separate simulated disks); a
    # live journal object names exactly one transaction-time order.
    key = (journal, lsn)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _CACHE_HITS.add()
        return cached

    if obs.is_enabled:
        with obs.span("bitemporal.reconstruct", lsn=lsn) as sp:
            restored = _reconstruct(journal, lsn)
            sp.annotate(objects=len(restored))
    else:
        restored = _reconstruct(journal, lsn)
    if cache_capacity > 0:
        _CACHE[key] = restored
        while len(_CACHE) > cache_capacity:
            _CACHE.popitem(last=False)
    return restored


def _reconstruct(journal, lsn: int) -> "TemporalDatabase":
    """Replay the committed prefix ``<= lsn`` into a fresh database."""
    from repro.database.recovery import recover

    restored, report = recover(
        journal.directory, fs=journal.fs, stop_lsn=lsn
    )
    if restored is None:
        detail = "; ".join(report.errors) or "unrecoverable"
        raise BitemporalError(
            f"cannot reconstruct transaction time {lsn}: {detail}"
        )
    _RECONSTRUCTIONS.add()
    return restored


def believed_extent(
    db, lsn: int, class_name: str, valid_time: int
) -> frozenset:
    """``pi(c, vt)`` as believed at transaction time *lsn* -- the
    canonical bitemporal question ("what did we believe at commit
    *lsn* about the state at *vt*?")."""
    return as_of(db, lsn).extent(class_name, valid_time)


def stats() -> dict:
    """Process-wide AS OF gauges (``repro stats``; exported as
    ``repro_bitemporal_*`` Prometheus gauges)."""
    return {
        "asof_reads": _READS.count,
        "head_hits": _HEAD_HITS.count,
        "cache_hits": _CACHE_HITS.count,
        "reconstructions": _RECONSTRUCTIONS.count,
        "cache_entries": len(_CACHE),
        "cache_capacity": cache_capacity,
    }
