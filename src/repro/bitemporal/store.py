"""The bitemporal wrapper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.database.database import TemporalDatabase
from repro.database.persistence import database_from_json, database_to_json
from repro.errors import TimeError


@dataclass(frozen=True)
class Commit:
    """One transaction-time version."""

    transaction_time: int
    valid_time: int  # the valid-time clock reading when stored
    label: str
    state: str  # serialized database


class BitemporalDatabase:
    """A valid-time database under an append-only transaction-time log.

    Usage::

        bdb = BitemporalDatabase()
        db = bdb.current                 # the live valid-time database
        ... db.define_class / create_object / tick ...
        tt0 = bdb.commit("initial load")
        ... more updates (including retroactive corrections) ...
        tt1 = bdb.commit("correction")

        past_belief = bdb.as_of(tt0)     # the database as stored at tt0
        past_belief.pi("employee", 5)    # bitemporal: belief at tt0
                                         # about valid instant 5
    """

    def __init__(self, start_time: int = 0) -> None:
        self.current = TemporalDatabase(start_time)
        self._commits: list[Commit] = []

    # -- the transaction-time dimension ------------------------------------

    @property
    def transaction_now(self) -> int:
        """The next transaction instant to be assigned."""
        return len(self._commits)

    def commit(self, label: str = "") -> int:
        """Store the current state; returns its transaction time."""
        tt = len(self._commits)
        self._commits.append(
            Commit(
                transaction_time=tt,
                valid_time=self.current.now,
                label=label,
                state=database_to_json(self.current),
            )
        )
        return tt

    def commits(self) -> Iterator[Commit]:
        return iter(self._commits)

    def transaction_times(self) -> tuple[int, ...]:
        return tuple(c.transaction_time for c in self._commits)

    def as_of(self, transaction_time: int) -> TemporalDatabase:
        """The database exactly as stored at *transaction_time*.

        Returns a fresh rehydrated instance; mutating it does not
        affect the log (transaction time is append-only) nor the
        current database.
        """
        if not 0 <= transaction_time < len(self._commits):
            raise TimeError(
                f"no commit at transaction time {transaction_time}; "
                f"have 0..{len(self._commits) - 1}"
            )
        return database_from_json(self._commits[transaction_time].state)

    def latest(self) -> TemporalDatabase:
        """The most recently committed version."""
        if not self._commits:
            raise TimeError("nothing committed yet")
        return self.as_of(len(self._commits) - 1)

    # -- bitemporal queries --------------------------------------------------

    def believed_extent(
        self, transaction_time: int, class_name: str, valid_time: int
    ) -> frozenset:
        """``pi(c, vt)`` as believed at transaction time *tt* -- the
        canonical bitemporal question."""
        return self.as_of(transaction_time).pi(class_name, valid_time)

    def belief_history(
        self, class_name: str, valid_time: int
    ) -> list[tuple[int, frozenset]]:
        """How the belief about ``pi(c, vt)`` evolved across commits:
        one (transaction_time, extent) pair per commit -- differences
        between consecutive entries are retroactive corrections."""
        return [
            (
                commit.transaction_time,
                database_from_json(commit.state).extent(
                    class_name, valid_time
                ),
            )
            for commit in self._commits
        ]

    def __repr__(self) -> str:
        return (
            f"BitemporalDatabase(commits={len(self._commits)}, "
            f"current_valid_now={self.current.now})"
        )
