"""Transaction time: the second time dimension (paper, Section 1.1).

The paper models *valid time* only ("the time a fact was true in
reality") and notes that the model "can be easily extended to
different notions of time", *transaction time* ("the time the fact was
stored in the database") being the other dimension of interest.  This
package supplies that extension.

:class:`BitemporalDatabase` wraps a valid-time
:class:`~repro.database.database.TemporalDatabase` with a
transaction-time commit log: every :meth:`~BitemporalDatabase.commit`
captures the complete database state (via the persistence codec) under
the next transaction instant.  ``as_of(tt)`` rehydrates the database
exactly as it was stored at transaction time tt, and bitemporal
queries compose the two dimensions: *"what did we believe at
transaction time tt about the world at valid time vt?"* --
``as_of(tt)`` followed by any valid-time query ``at vt``.

Transaction time is append-only and never reinterpreted, so the commit
log is immutable by construction; the implementation stores full
serialized states (copy-on-commit), which is the simple, obviously
correct realization -- adequate at model-demonstration scale and
measured in the test suite.
"""

from repro.bitemporal.store import BitemporalDatabase

__all__ = ["BitemporalDatabase"]
