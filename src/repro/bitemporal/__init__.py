"""Transaction time: the second time dimension (paper, Section 1.1).

The paper models *valid time* only ("the time a fact was true in
reality") and notes that the model "can be easily extended to
different notions of time", *transaction time* ("the time the fact was
stored in the database") being the other dimension of interest.  This
package supplies that extension, in two tiers:

* :mod:`repro.bitemporal.asof` -- the core realization.  Transaction
  time is the WAL's commit-LSN order, recorded for free off the event
  stream every journaled mutation already feeds; :func:`as_of` rebuilds
  the state believed at any committed LSN through the stock recovery
  path (so ``AS OF n`` equals ``restore_to(lsn=n)`` by construction),
  and every query surface takes an ``as of <lsn>`` qualifier orthogonal
  to the five valid-time scopes.  See ``docs/bitemporal.md``.
* :class:`BitemporalDatabase` (:mod:`repro.bitemporal.store`) -- the
  original label-addressed commit log over full serialized states
  (copy-on-commit): the simple, obviously correct realization, kept as
  the model-demonstration tier and as an independent oracle.

Bitemporal queries compose the two dimensions: *"what did we believe
at transaction time tt about the world at valid time vt?"* --
``as_of(db, tt)`` followed by any valid-time query ``at vt``
(:func:`believed_extent` packages the canonical form).  Transaction
time is append-only and never reinterpreted: a committed journal
prefix never changes, which is what makes historical states immutable
and memoizable.
"""

from repro.bitemporal.asof import (
    as_of,
    believed_extent,
    clear_cache,
    stats,
    transaction_now,
)
from repro.bitemporal.store import BitemporalDatabase

__all__ = [
    "BitemporalDatabase",
    "as_of",
    "believed_extent",
    "clear_cache",
    "stats",
    "transaction_now",
]
