"""Setup shim.

The offline environment lacks the `wheel` package, so `pip install -e .`
(PEP 660) cannot build an editable wheel. `python setup.py develop`
installs the package in editable mode using only setuptools.
"""
from setuptools import setup

setup()
