#!/usr/bin/env python
"""Docs-drift lint: documented names must exist in the code registries.

Scans ``README.md`` and ``docs/*.md`` (or explicit file arguments) for
three vocabularies and asserts each documented name is real:

* **perf/obs metric names** -- backtick-quoted dotted lowercase tokens
  (``database.pi``, ``wal.syncs``, ``obs.spans``, ``db.snapshot``)
  whose first segment matches a registered family.  Checked against
  the live ``repro.perf`` counter/metric registry (imported, not
  grepped, so the lint can't drift either) plus the span kinds in
  ``repro.obs.KINDS``;
* **environment variables** -- ``REPRO_*`` tokens, checked against the
  variables actually read anywhere under ``src/``;
* **CLI subcommands** -- ``repro <cmd>`` / ``python -m repro <cmd>``
  inside backticks or fenced code blocks, checked against the real
  ``repro.__main__.build_parser()`` subcommand registry.

Exit 0 when every documented name exists, 1 otherwise (listing each
orphan with its file).  Wired as the ``docs-drift`` CI job; the
negative test in tests/test_obs.py asserts a deliberately orphaned
metric name fails.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

BACKTICK = re.compile(r"`([^`\n]+)`")
FENCE = re.compile(r"^```")
ENV_VAR = re.compile(r"\b(REPRO_[A-Z0-9_]+)")
# A metric reference is an *entire* inline-backtick token: `wal.syncs`.
# Substrings of code (`db.tick(10)`) or module/file names are not.
DOTTED = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+$")
FILE_SUFFIXES = (".json", ".md", ".py", ".txt", ".yml")
CLI = re.compile(r"(?:python -m repro|^\$ repro|^repro) +([a-z][a-z-]+)\b")


def _known_names() -> tuple[set, set, set]:
    """(metric/span names, env vars, CLI subcommands) from the code."""
    sys.path.insert(0, str(SRC))
    # Importing these registers every counter/metric family.
    import repro.bitemporal.asof  # noqa: F401
    import repro.constraints.constraints  # noqa: F401
    import repro.database.batch  # noqa: F401
    import repro.database.database  # noqa: F401
    import repro.database.mvcc  # noqa: F401
    import repro.database.pagecache  # noqa: F401
    import repro.database.parallel  # noqa: F401
    import repro.database.recovery  # noqa: F401
    import repro.database.segments  # noqa: F401
    import repro.database.wal  # noqa: F401
    import repro.query.planner  # noqa: F401
    import repro.replication.replica  # noqa: F401
    import repro.replication.shipper  # noqa: F401
    import repro.server.executor  # noqa: F401
    import repro.server.server  # noqa: F401
    import repro.temporal.temporalvalue  # noqa: F401
    import repro.types.subtyping  # noqa: F401
    from repro import obs, perf
    from repro.__main__ import build_parser

    names = set(perf.stats()) | set(obs.KINDS)

    env_vars: set[str] = set()
    for path in SRC.rglob("*.py"):
        env_vars.update(ENV_VAR.findall(path.read_text(encoding="utf-8")))

    sub_action = next(
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    commands = set(sub_action.choices)
    return names, env_vars, commands


def _doc_snippets(text: str) -> tuple[list[str], list[str]]:
    """(inline backtick tokens, fenced-code-block lines)."""
    tokens = list(BACKTICK.findall(text))
    lines: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            lines.append(line.strip())
    return tokens, lines


def check_file(
    path: Path, names: set, env_vars: set, commands: set
) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    families = {name.split(".", 1)[0] for name in names}
    tokens, code_lines = _doc_snippets(text)
    for snippet in tokens + code_lines:
        for var in ENV_VAR.findall(snippet):
            if var not in env_vars:
                problems.append(
                    f"{path.name}: env var `{var}` is not read anywhere "
                    "under src/"
                )
        for command in CLI.findall(snippet):
            if command not in commands:
                problems.append(
                    f"{path.name}: CLI subcommand `repro {command}` does "
                    "not exist"
                )
    for token in tokens:
        if not DOTTED.fullmatch(token):
            continue
        if token.endswith(FILE_SUFFIXES):
            continue  # an example file name, not a metric
        if token.split(".", 1)[0] not in families:
            continue  # a module path, not a metric
        if token not in names:
            problems.append(
                f"{path.name}: metric/span `{token}` is not in the "
                "perf/obs registry"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to lint (default: README.md + docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]
    names, env_vars, commands = _known_names()
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, names, env_vars, commands))
    if problems:
        print(f"docs drift: {len(problems)} orphaned reference(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    checked = ", ".join(path.name for path in files)
    print(f"docs drift: OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
